//! A minimal JSON value parser (no external dependencies — the build
//! environment has no registry access), sufficient to re-parse and
//! validate the Chrome `trace_event` files this crate renders.

use std::collections::BTreeMap;
use std::str::Chars;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order is not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value of object key `k`, if this is an object that has it.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(k),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    chars: Chars<'a>,
    /// One-character lookahead.
    peeked: Option<char>,
    /// Characters consumed (for error positions).
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            chars: s.chars(),
            peeked: None,
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at char {}: {what}", self.pos)
    }

    fn peek(&mut self) -> Option<char> {
        if self.peeked.is_none() {
            self.peeked = self.chars.next();
        }
        self.peeked
    }

    fn next(&mut self) -> Option<char> {
        let c = self.peek();
        self.peeked = None;
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.next() {
            Some(got) if got == c => Ok(()),
            Some(got) => Err(self.err(&format!("expected `{c}`, got `{got}`"))),
            None => Err(self.err(&format!("expected `{c}`, got end of input"))),
        }
    }

    fn literal(&mut self, rest: &str, v: Json) -> Result<Json, String> {
        for c in rest.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        // Opening quote already consumed by the caller.
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        // Surrogate pairs are not produced by our
                        // renderer; map unpaired surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if (c as u32) < 0x20 => return Err(self.err("unescaped control character")),
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self, first: char) -> Result<Json, String> {
        let mut text = String::new();
        text.push(first);
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                text.push(c);
                self.next();
            } else {
                break;
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number `{text}`")))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.next() {
            None => Err(self.err("expected a value, got end of input")),
            Some('n') => self.literal("ull", Json::Null),
            Some('t') => self.literal("rue", Json::Bool(true)),
            Some('f') => self.literal("alse", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => {
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.next();
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(',') => continue,
                        Some(']') => return Ok(Json::Arr(items)),
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some('{') => {
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.next();
                    return Ok(Json::Obj(map));
                }
                loop {
                    self.skip_ws();
                    self.expect('"')?;
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    map.insert(key, self.value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(',') => continue,
                        Some('}') => return Ok(Json::Obj(map)),
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(c),
            Some(c) => Err(self.err(&format!("unexpected `{c}`"))),
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    match p.peek() {
        None => Ok(v),
        Some(c) => Err(p.err(&format!("trailing `{c}` after document"))),
    }
}

/// Escapes a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2].as_str(), Some("x\n"));
        assert_eq!(a[3], Json::Bool(true));
        assert_eq!(a[4], Json::Null);
        assert_eq!(v.get("b"), Some(&Json::Obj(Default::default())));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "nul", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap().as_str(), Some("Aé"));
    }
}
