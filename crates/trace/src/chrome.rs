//! Chrome `trace_event` JSON backend.
//!
//! Renders a [`Trace`] in the [Trace Event Format] (JSON object form,
//! `{"traceEvents": [...]}`), loadable in `chrome://tracing` or
//! Perfetto. Each core/worker becomes one thread track of a single
//! process: a `"M"` metadata event names the track, `"X"` complete
//! events carry the activity spans (work / overhead / idle), and `"i"`
//! instant events carry the task-lifecycle markers.
//!
//! [Trace Event Format]:
//! https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Timestamps are nominally microseconds in the format; we map one time
//! unit (cycle/tick) to one microsecond, which only rescales the ruler.
//! [`validate`] re-parses rendered output and checks the invariants CI
//! relies on: a well-formed document, required keys per event, and
//! per-track monotone timestamps.

use std::fmt::Write as _;

use crate::event::{EventKind, Trace, TraceEvent};
use crate::json::{self, Json};

/// The process id all tracks share.
const PID: u64 = 1;

fn instant_name(kind: &EventKind) -> Option<&'static str> {
    Some(match kind {
        EventKind::TaskSpawn { .. } => "spawn",
        EventKind::TaskPromote { .. } => "promote",
        EventKind::HeartbeatDelivered => "hb-delivered",
        EventKind::HeartbeatServiced => "hb-serviced",
        EventKind::Steal { .. } => "steal-in",
        EventKind::JoinStash { .. } => "join-stash",
        EventKind::JoinMerge { .. } => "join-merge",
        EventKind::JoinContinue { .. } => "join-continue",
        EventKind::TaskEnd { .. } => "halt",
        EventKind::Work { .. } | EventKind::Overhead { .. } | EventKind::Idle => return None,
    })
}

fn push_args(out: &mut String, kind: &EventKind) {
    match kind {
        EventKind::Work { task } => {
            let _ = write!(out, r#","args":{{"task":{task}}}"#);
        }
        EventKind::TaskSpawn { parent, child } => {
            let _ = write!(out, r#","args":{{"parent":{parent},"child":{child}}}"#);
        }
        EventKind::TaskPromote { task } | EventKind::TaskEnd { task } => {
            let _ = write!(out, r#","args":{{"task":{task}}}"#);
        }
        EventKind::Steal { victim } => {
            let _ = write!(out, r#","args":{{"victim":{victim}}}"#);
        }
        EventKind::JoinStash { task, node } => {
            let _ = write!(out, r#","args":{{"task":{task},"node":{node}}}"#);
        }
        EventKind::JoinMerge { task, node, merged } => {
            let _ = write!(
                out,
                r#","args":{{"task":{task},"node":{node},"merged":{merged}}}"#
            );
        }
        EventKind::JoinContinue { task, resumed } => {
            let _ = write!(out, r#","args":{{"task":{task},"resumed":{resumed}}}"#);
        }
        EventKind::Overhead { .. }
        | EventKind::Idle
        | EventKind::HeartbeatDelivered
        | EventKind::HeartbeatServiced => {}
    }
}

fn push_event(out: &mut String, tid: u64, e: &TraceEvent) {
    match &e.kind {
        EventKind::Work { .. } => {
            let _ = write!(
                out,
                r#"{{"name":"work","ph":"X","pid":{PID},"tid":{tid},"ts":{},"dur":{}"#,
                e.ts, e.dur
            );
        }
        EventKind::Overhead { what } => {
            let _ = write!(
                out,
                r#"{{"name":"{}","ph":"X","pid":{PID},"tid":{tid},"ts":{},"dur":{}"#,
                what.label(),
                e.ts,
                e.dur
            );
        }
        EventKind::Idle => {
            let _ = write!(
                out,
                r#"{{"name":"idle","ph":"X","pid":{PID},"tid":{tid},"ts":{},"dur":{}"#,
                e.ts, e.dur
            );
        }
        kind => {
            let name = instant_name(kind).expect("span kinds handled above");
            let _ = write!(
                out,
                r#"{{"name":"{name}","ph":"i","s":"t","pid":{PID},"tid":{tid},"ts":{}"#,
                e.ts
            );
        }
    }
    push_args(out, &e.kind);
    out.push('}');
}

/// Renders `trace` as a Chrome `trace_event` JSON document.
///
/// Events within each track are emitted sorted by timestamp (stably, so
/// same-cycle events keep their causal sequence order): recording order
/// is not time order, because lazily settled idle chains land in the
/// buffers retroactively, but the viewer expects monotone `ts` per
/// thread track.
pub fn chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(64 + trace.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    for (tid, track) in trace.tracks.iter().enumerate() {
        let tid = tid as u64;
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"name":"thread_name","ph":"M","pid":{PID},"tid":{tid},"args":{{"name":"{}"}}}}"#,
            json::escape(&track.name)
        );
        let mut events: Vec<&TraceEvent> = track.events.iter().collect();
        events.sort_by_key(|e| (e.ts, e.seq));
        for e in events {
            sep(&mut out);
            push_event(&mut out, tid, e);
        }
    }
    let _ = write!(
        out,
        "],\n\"displayTimeUnit\":\"ns\",\"otherData\":{{\"timeUnit\":\"{}\",\"heartbeat\":{},\"policy\":\"{}\"}}}}",
        json::escape(trace.time_unit),
        trace.heartbeat,
        json::escape(&trace.policy)
    );
    out
}

fn event_f64(e: &Json, key: &str, i: usize) -> Result<f64, String> {
    e.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event {i}: missing or non-numeric \"{key}\""))
}

/// Validates a rendered Chrome trace document.
///
/// Checks that the text parses as JSON, has a `traceEvents` array, that
/// every event carries the keys its phase requires (`name`, `ph`,
/// `pid`, `tid`, `ts` — plus `dur` for `"X"`), that phases are ones we
/// emit, and that within each `(pid, tid)` track the non-metadata
/// timestamps are monotonically non-decreasing. Returns the number of
/// events checked.
pub fn validate(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    // (pid, tid) -> last seen ts.
    let mut last_ts: std::collections::BTreeMap<(u64, u64), f64> = Default::default();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing \"name\""))?;
        let pid = event_f64(e, "pid", i)? as u64;
        let tid = event_f64(e, "tid", i)? as u64;
        match ph {
            "M" => continue,
            "X" => {
                event_f64(e, "dur", i)?;
            }
            "i" => {
                e.get("s")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: instant missing scope \"s\""))?;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
        let ts = event_f64(e, "ts", i)?;
        let slot = last_ts.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
        if ts < *slot {
            return Err(format!(
                "event {i}: ts {ts} < previous {} on track ({pid},{tid}) — not monotone",
                *slot
            ));
        }
        *slot = ts;
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{OverheadKind, TraceBuilder};

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2, "cycles", 100);
        b.record(0, 0, 10, EventKind::Work { task: 0 });
        b.record(
            0,
            10,
            0,
            EventKind::TaskSpawn {
                parent: 0,
                child: 1,
            },
        );
        b.record(
            0,
            10,
            2,
            EventKind::Overhead {
                what: OverheadKind::Fork,
            },
        );
        b.record(1, 12, 0, EventKind::Steal { victim: 0 });
        // Retroactively settled idle: recorded after later events, starts
        // earlier — the renderer must sort it into place.
        b.record(1, 0, 12, EventKind::Idle);
        b.record(1, 12, 5, EventKind::Work { task: 1 });
        b.record(0, 20, 0, EventKind::TaskEnd { task: 0 });
        b.finish()
    }

    #[test]
    fn rendered_trace_validates() {
        let text = chrome_json(&sample());
        let n = validate(&text).expect("should validate");
        // 7 events + 2 thread_name metadata records.
        assert_eq!(n, 9);
    }

    #[test]
    fn rendered_trace_is_sorted_per_track() {
        let doc = json::parse(&chrome_json(&sample())).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Track 1's idle (ts 0) must precede its steal-in (ts 12).
        let track1: Vec<&str> = events
            .iter()
            .filter(|e| {
                e.get("tid").unwrap().as_num() == Some(1.0)
                    && e.get("ph").unwrap().as_str() != Some("M")
            })
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(track1, ["idle", "steal-in", "work"]);
    }

    #[test]
    fn validator_rejects_non_monotone_ts() {
        let bad = r#"{"traceEvents":[
            {"name":"work","ph":"X","pid":1,"tid":0,"ts":10,"dur":1},
            {"name":"work","ph":"X","pid":1,"tid":0,"ts":5,"dur":1}]}"#;
        let err = validate(bad).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
    }

    #[test]
    fn validator_rejects_missing_keys_and_bad_phase() {
        assert!(validate(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
        assert!(
            validate(r#"{"traceEvents":[{"name":"x","ph":"B","pid":1,"tid":0,"ts":0}]}"#).is_err()
        );
        assert!(validate(r#"{"notTraceEvents":[]}"#).is_err());
        assert!(validate("not json").is_err());
    }

    #[test]
    fn empty_trace_renders_and_validates() {
        let text = chrome_json(&TraceBuilder::new(1, "cycles", 0).finish());
        assert_eq!(validate(&text).unwrap(), 1); // just the metadata record
    }

    #[test]
    fn policy_tag_lands_in_other_data() {
        let trace = TraceBuilder::new(1, "cycles", 5)
            .policy("adaptive:64/sequence")
            .finish();
        let doc = json::parse(&chrome_json(&trace)).unwrap();
        let other = doc.get("otherData").unwrap();
        assert_eq!(
            other.get("policy").and_then(Json::as_str),
            Some("adaptive:64/sequence")
        );
    }
}
