//! Validates Chrome trace_event JSON files produced by `--trace`.
//!
//! Usage: `validate_trace FILE...` — exits nonzero on the first file
//! that fails schema validation (well-formed JSON, required keys per
//! event, monotone timestamps per track). CI runs this on a freshly
//! recorded simulator trace.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace FILE...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::FAILURE;
            }
        };
        match tpal_trace::chrome::validate(&text) {
            Ok(n) => println!("{path}: ok ({n} events)"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
