//! A cycle-level multicore simulator for TPAL programs.
//!
//! The paper evaluates TPAL on a 16-core machine; this crate provides the
//! corresponding substrate as a deterministic discrete-event simulation:
//! `P` virtual cores execute TPAL tasks using the single-step semantics
//! of [`tpal_core::machine`], balanced by per-core work-stealing deques,
//! with heartbeat interrupts raised by a configurable [`InterruptModel`]:
//!
//! * [`InterruptModel::PerCoreTimer`] — each core's local timer raises
//!   the heartbeat flag exactly every ♥ cycles at negligible cost. This
//!   models Nautilus driving the APIC timer and Nemo IPIs (§5).
//! * [`InterruptModel::PingThread`] — a dedicated signaller delivers
//!   interrupts to the cores *sequentially*, each delivery costing
//!   latency plus jitter; when a full round takes longer than ♥ the
//!   target rate is missed, exactly the Linux behaviour of Figure 10.
//! * [`InterruptModel::Disabled`] — no heartbeats: the serial-by-default
//!   code runs unpromoted.
//!
//! As in the paper's §4.2 setup, the signalling agent does not occupy a
//! worker core (the paper reserves core 0 for the ping thread).
//!
//! The simulator reports the makespan in cycles, utilization, task and
//! promotion counts, and achieved-versus-target heartbeat rates — the
//! quantities behind Figures 7, 10, 11, 14, and 15.
//!
//! Two engines implement the same model: [`Sim`], the event-driven
//! production engine (a binary-heap event queue plus instruction-run
//! batching via [`tpal_core::machine::run_task_until`]), and [`SimRef`],
//! the original one-tick-per-cycle loop kept as the executable
//! specification. They are held observably equivalent — identical
//! makespan, stats, and final registers on every program ×
//! configuration × seed — by the `engine_equivalence` differential
//! tests.
//!
//! # Example
//!
//! ```
//! use tpal_core::programs::prod;
//! use tpal_sim::{InterruptModel, Sim, SimConfig};
//!
//! let program = prod();
//! let mut config = SimConfig::default();
//! config.cores = 4;
//! config.heartbeat = 3_000; // ♥ must amortise the fork cost (§2.2)
//! let mut sim = Sim::new(&program, config);
//! sim.set_reg("a", 500_000).unwrap();
//! sim.set_reg("b", 2).unwrap();
//! let out = sim.run().unwrap();
//! assert_eq!(out.read_reg("c"), Some(1_000_000));
//! assert!(out.stats.forks > 0);
//! assert!(out.speedup_base() > 2.0); // parallel work actually overlapped
//! ```

#![warn(missing_docs)]

mod engine;
mod engine_ref;
pub mod timeline;

pub use engine::{Sim, SimConfig, SimOutcome, SimStats};
pub use engine_ref::SimRef;
// Scheduling decisions (interrupt models, policies, the deterministic
// RNG) live in the shared policy kernel; re-exported here so simulator
// users need not depend on `tpal-sched` directly.
pub use timeline::{Activity, Bucket, Timeline};
// The execution tier (reference / decoded / threaded interpreter)
// selected via `SimConfig::exec_tier`; re-exported for the same reason.
pub use tpal_core::tier::ExecTier;
pub use tpal_sched::{InterruptModel, Policy, Promotion, SplitMix64, Victim};
