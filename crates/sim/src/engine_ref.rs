//! The reference cycle-tick engine.
//!
//! [`SimRef`] is the original simulator loop, kept verbatim: it advances
//! global time one cycle at a time, delivering interrupts and scanning
//! every core each tick. It is O(makespan × cores) regardless of how much
//! actually happens per cycle, which makes it too slow for full-scale
//! experiments — but its semantics are trivially auditable against the
//! paper's scheduling model, so it serves as the executable specification
//! for the event-driven [`Sim`](crate::Sim): the
//! `engine_equivalence` differential suite holds the two engines to
//! identical outcomes (makespan, every counter, final registers) on every
//! program × configuration × seed.

use tpal_core::isa::Reg;
use tpal_core::machine::{
    resolve_join, step_task, JoinResolution, MachineError, StepOutcome, Stores, TaskState, Value,
};
use tpal_core::program::Program;

use tpal_sched::{
    HeartbeatDelivery, InterruptModel, PingChain, PromoteState, PromoteStep, PromotionPolicy,
    RngEnv, SplitMix64, VictimPolicy,
};

use crate::engine::{SimConfig, SimOutcome, SimStats};
use crate::timeline::{Activity, Timeline};

struct Core {
    current: Option<TaskState>,
    deque: std::collections::VecDeque<TaskState>,
    busy_until: u64,
    promote: PromoteState,
    next_hb: u64,
    probe_k: u64,
}

/// The reference multicore simulator: one global tick per cycle.
///
/// Same public API and observable behaviour as [`Sim`](crate::Sim); see
/// the module docs for why it is kept.
pub struct SimRef<'p> {
    program: &'p Program,
    config: SimConfig,
    stores: Stores,
    initial: Option<TaskState>,
}

impl<'p> SimRef<'p> {
    /// Creates a simulator whose initial task starts at the program's
    /// entry block on core 0.
    pub fn new(program: &'p Program, config: SimConfig) -> Self {
        assert!(config.cores > 0, "at least one core required");
        let mut stores = Stores::new();
        stores.stacks.set_promotion_order(config.promotion_order);
        SimRef {
            program,
            config,
            stores,
            initial: Some(TaskState::new(program, program.entry())),
        }
    }

    /// Seeds an integer argument register of the initial task.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_reg(&mut self, name: &str, value: i64) -> Result<(), MachineError> {
        let reg = self.program.reg(name).ok_or(MachineError::UnknownName)?;
        self.initial
            .as_mut()
            .expect("simulation already run")
            .regs
            .write(reg, Value::Int(value));
        Ok(())
    }

    /// Allocates and initialises a heap array before the run.
    pub fn alloc_array(&mut self, data: &[i64]) -> i64 {
        self.stores.heap.alloc_init(data)
    }

    /// Allocates a zeroed heap array before the run.
    pub fn alloc_zeroed(&mut self, len: usize) -> i64 {
        self.stores.heap.alloc(len)
    }

    /// Read access to the heap (e.g. to extract output arrays after the
    /// run).
    pub fn heap(&self) -> &tpal_core::machine::Heap {
        &self.stores.heap
    }

    /// Runs the simulation to `halt`.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a task, [`MachineError::Deadlock`]
    /// if all cores go idle with no runnable task before a `halt`, or
    /// [`MachineError::StepLimitExceeded`].
    pub fn run(&mut self) -> Result<SimOutcome, MachineError> {
        let cfg = self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        let mut stats = SimStats::default();
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|_| Core {
                current: None,
                deque: std::collections::VecDeque::new(),
                busy_until: 0,
                promote: PromoteState::default(),
                next_hb: cfg.heartbeat,
                probe_k: 0,
            })
            .collect();
        cores[0].current = Some(self.initial.take().expect("simulation already run"));

        // Ping-thread signaller state.
        let mut ping = PingChain::new(cfg.heartbeat, cfg.heartbeat);

        let mut now: u64 = 0;
        #[allow(unused_assignments)]
        let mut halted: Option<TaskState> = None;
        let mut live_tasks: usize = 1;
        let mut timeline = if cfg.record_timeline {
            Some(Timeline::new(cfg.cores, (cfg.heartbeat / 2).max(64)))
        } else {
            None
        };
        macro_rules! trace {
            ($core:expr, $kind:expr, $cycles:expr) => {
                if let Some(tl) = &mut timeline {
                    tl.record($core, now, $kind, $cycles);
                }
            };
        }

        'sim: loop {
            now += 1;

            // Interrupt delivery.
            match cfg.interrupt {
                InterruptModel::PerCoreTimer { service_cost } => {
                    for (ci, core) in cores.iter_mut().enumerate() {
                        if now >= core.next_hb {
                            core.promote.beat = true;
                            core.next_hb += cfg.heartbeat;
                            core.busy_until = core.busy_until.max(now) + service_cost;
                            stats.heartbeats_delivered += 1;
                            stats.overhead_cycles += service_cost;
                            trace!(ci, Activity::Overhead, service_cost);
                        }
                    }
                }
                InterruptModel::JitteredTimer { service_cost, .. } => {
                    for ci in 0..cfg.cores {
                        if now >= cores[ci].next_hb {
                            // One jitter draw per delivery, in core
                            // index order — the stream-order contract
                            // the event engine replays.
                            let next = {
                                let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                                cfg.interrupt.next_deadline(
                                    &mut env,
                                    cores[ci].next_hb,
                                    cfg.heartbeat,
                                )
                            };
                            let core = &mut cores[ci];
                            core.promote.beat = true;
                            core.next_hb = next;
                            core.busy_until = core.busy_until.max(now) + service_cost;
                            stats.heartbeats_delivered += 1;
                            stats.overhead_cycles += service_cost;
                            trace!(ci, Activity::Overhead, service_cost);
                        }
                    }
                }
                InterruptModel::PingThread { service_cost, .. } => {
                    if now >= ping.next_time {
                        let ci = ping.next_core;
                        let core = &mut cores[ci];
                        core.promote.beat = true;
                        core.busy_until = core.busy_until.max(now) + service_cost;
                        stats.heartbeats_delivered += 1;
                        stats.overhead_cycles += service_cost;
                        trace!(ci, Activity::Overhead, service_cost);
                        let delay = {
                            let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                            cfg.interrupt.ping_delay(&mut env)
                        };
                        ping.advance(now, cfg.cores, cfg.heartbeat, delay);
                    }
                }
                InterruptModel::Disabled => {}
            }

            let mut all_idle = true;
            for c in 0..cfg.cores {
                if cores[c].busy_until > now {
                    all_idle = false;
                    continue;
                }
                // Acquire work if idle.
                if cores[c].current.is_none() {
                    if let Some(t) = cores[c].deque.pop_back() {
                        cores[c].current = Some(t);
                    } else if cfg.cores > 1 {
                        // Steal from another core's top; the policy
                        // picks the victim.
                        let victim = {
                            let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                            cfg.policy.victim.probe(&mut env, c, 0, cores[c].probe_k)
                        };
                        cores[c].probe_k += 1;
                        let stolen = cores[victim].deque.pop_front();
                        match stolen {
                            Some(t) => {
                                cores[c].current = Some(t);
                                cores[c].busy_until = now + cfg.steal_cost;
                                stats.steals += 1;
                                stats.overhead_cycles += cfg.steal_cost;
                                trace!(c, Activity::Overhead, cfg.steal_cost);
                                all_idle = false;
                                continue;
                            }
                            None => {
                                cores[c].busy_until = now + cfg.steal_retry_cost;
                                stats.failed_steals += 1;
                                stats.idle_cycles += cfg.steal_retry_cost;
                                trace!(c, Activity::Idle, cfg.steal_retry_cost);
                                continue;
                            }
                        }
                    } else {
                        stats.idle_cycles += 1;
                        trace!(c, Activity::Idle, 1);
                        continue;
                    }
                }
                all_idle = false;

                let mut task = cores[c].current.take().expect("task present");

                // Scheduling boundary: the promotion policy decides what
                // a promotion-ready point does with the delivered beat
                // (rollforward semantics).
                let promo = cfg.policy.promotion;
                if promo.wants_point_check(&cores[c].promote) {
                    if let Some(handler) = task.at_promotion_point(self.program) {
                        match promo.decide(true, &mut cores[c].promote, now) {
                            PromoteStep::Divert => {
                                task.divert_to_handler(handler);
                                stats.promotions += 1;
                            }
                            // This engine executes exactly one
                            // instruction below either way, which is all
                            // StepPast asks for.
                            PromoteStep::StepPast | PromoteStep::Run => {}
                        }
                    }
                }

                match step_task(self.program, &mut task, &mut self.stores)? {
                    StepOutcome::Ran => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        cores[c].busy_until = now + 1;
                        cores[c].current = Some(task);
                    }
                    StepOutcome::Halted => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        halted = Some(task);
                        break 'sim;
                    }
                    StepOutcome::Forked { child } => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        trace!(c, Activity::Overhead, cfg.fork_cost);
                        stats.forks += 1;
                        // The diversion produced a task: re-arm the
                        // eager policy's bounce guard.
                        promo.on_fork(&mut cores[c].promote);
                        cores[c].deque.push_back(*child);
                        cores[c].busy_until = now + 1 + cfg.fork_cost;
                        stats.overhead_cycles += cfg.fork_cost;
                        cores[c].current = Some(task);
                        live_tasks += 1;
                        stats.max_live_tasks = stats.max_live_tasks.max(live_tasks);
                    }
                    StepOutcome::Joined { jr } => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        trace!(c, Activity::Overhead, cfg.join_cost);
                        stats.joins += 1;
                        cores[c].busy_until = now + 1 + cfg.join_cost;
                        stats.overhead_cycles += cfg.join_cost;
                        match resolve_join(self.program, task, jr, &mut self.stores, 0)? {
                            JoinResolution::TaskDied => {
                                live_tasks -= 1;
                            }
                            JoinResolution::Merged(t) => {
                                stats.merges += 1;
                                cores[c].current = Some(*t);
                            }
                            JoinResolution::Completed(t) => {
                                cores[c].current = Some(*t);
                            }
                        }
                    }
                }
                if stats.instructions > cfg.step_limit {
                    return Err(MachineError::StepLimitExceeded {
                        limit: cfg.step_limit,
                    });
                }
            }

            if all_idle
                && cores
                    .iter()
                    .all(|c| c.current.is_none() && c.deque.is_empty())
                && cores.iter().all(|c| c.busy_until <= now)
            {
                return Err(MachineError::Deadlock);
            }
        }

        let halted = halted.expect("loop exits via halt");
        let final_regs = (0..self.program.reg_count())
            .map(|i| {
                let r = Reg::from_index(i);
                (self.program.reg_name(r).to_owned(), halted.regs.read_raw(r))
            })
            .collect();

        Ok(SimOutcome {
            time: now,
            stats,
            cores: cfg.cores,
            heartbeat: cfg.heartbeat,
            timeline,
            // The reference engine predates structured tracing and keeps
            // the cycle-tick loop minimal; the machine's work/span
            // accounting is engine-independent, so those still apply.
            trace: None,
            work: halted.rel_work,
            span: halted.rel_span,
            final_regs,
        })
    }
}
