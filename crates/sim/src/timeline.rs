//! Per-core activity timelines.
//!
//! When [`SimConfig::record_timeline`](crate::SimConfig) is set, the
//! engine buckets each core's cycles into *work* (instruction execution),
//! *overhead* (fork, steal, join, interrupt servicing), and *idle*, and
//! the outcome carries a [`Timeline`] that renders as a text Gantt
//! chart — the visual counterpart of Figure 12's "steady versus
//! unsteady" promotion picture, and the quickest way to see ramp-up,
//! starvation, or a flooded scheduler at a glance.

/// Cycle classification within one bucket of one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bucket {
    /// Cycles spent executing instructions.
    pub work: u64,
    /// Cycles charged to fork/steal/join/interrupt costs.
    pub overhead: u64,
    /// Idle cycles (nothing to run, failed steals).
    pub idle: u64,
}

impl Bucket {
    fn total(&self) -> u64 {
        self.work + self.overhead + self.idle
    }
}

/// A per-core, bucketed activity record of one simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    bucket_cycles: u64,
    per_core: Vec<Vec<Bucket>>,
}

impl Timeline {
    pub(crate) fn new(cores: usize, bucket_cycles: u64) -> Timeline {
        Timeline {
            bucket_cycles: bucket_cycles.max(1),
            per_core: vec![Vec::new(); cores],
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, core: usize, time: u64, kind: Activity, cycles: u64) {
        let idx = (time / self.bucket_cycles) as usize;
        let row = &mut self.per_core[core];
        if row.len() <= idx {
            row.resize(idx + 1, Bucket::default());
        }
        let b = &mut row[idx];
        match kind {
            Activity::Work => b.work += cycles,
            Activity::Overhead => b.overhead += cycles,
            Activity::Idle => b.idle += cycles,
        }
    }

    /// Records a contiguous span of `cycles` cycles of `kind` starting at
    /// `start`, splitting it across buckets exactly as `cycles` individual
    /// [`Timeline::record`] calls of one cycle each would — this is what
    /// lets the batching engine charge a whole instruction run with one
    /// call instead of one per cycle.
    pub(crate) fn record_span(&mut self, core: usize, start: u64, kind: Activity, cycles: u64) {
        let mut t = start;
        let mut remaining = cycles;
        while remaining > 0 {
            let bucket_end = (t / self.bucket_cycles + 1) * self.bucket_cycles;
            let chunk = remaining.min(bucket_end - t);
            self.record(core, t, kind, chunk);
            t += chunk;
            remaining -= chunk;
        }
    }

    /// Rebuilds a timeline from a recorded structured trace, bucketing
    /// the activity spans exactly as the engine does live: work spans
    /// split across bucket boundaries ([`Timeline::record_span`]),
    /// overhead and idle charged whole to the bucket containing their
    /// start. A trace-recording run therefore yields the same timeline
    /// whether built live (`record_timeline`) or from its trace.
    pub fn from_trace(trace: &tpal_trace::Trace, bucket_cycles: u64) -> Timeline {
        let mut tl = Timeline::new(trace.tracks.len(), bucket_cycles);
        for (core, track) in trace.tracks.iter().enumerate() {
            for e in &track.events {
                match e.kind {
                    tpal_trace::EventKind::Work { .. } => {
                        tl.record_span(core, e.ts, Activity::Work, e.dur);
                    }
                    tpal_trace::EventKind::Overhead { .. } => {
                        tl.record(core, e.ts, Activity::Overhead, e.dur);
                    }
                    tpal_trace::EventKind::Idle => {
                        tl.record(core, e.ts, Activity::Idle, e.dur);
                    }
                    _ => {}
                }
            }
        }
        tl
    }

    /// The bucket size in cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.bucket_cycles
    }

    /// The recorded buckets of one core.
    pub fn core(&self, core: usize) -> &[Bucket] {
        &self.per_core[core]
    }

    /// Number of cores recorded.
    pub fn cores(&self) -> usize {
        self.per_core.len()
    }

    /// Renders a text Gantt chart, one row per core, `width` columns
    /// spanning the whole run:
    ///
    /// * `#` — the column is ≥ 75% useful work,
    /// * `+` — ≥ 25% work,
    /// * `o` — mostly overhead (fork/steal/join/interrupts),
    /// * `.` — mostly idle,
    /// * ` ` — nothing recorded.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(1);
        let buckets = self.per_core.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = String::new();
        for (c, row) in self.per_core.iter().enumerate() {
            out.push_str(&format!("core {c:>2} |"));
            for col in 0..width {
                // Merge the buckets covered by this column.
                let lo = col * buckets / width;
                let hi = (((col + 1) * buckets).div_ceil(width)).min(buckets);
                let mut merged = Bucket::default();
                for b in row.get(lo..hi).unwrap_or(&[]) {
                    merged.work += b.work;
                    merged.overhead += b.overhead;
                    merged.idle += b.idle;
                }
                let total = merged.total();
                let ch = if total == 0 {
                    ' '
                } else if merged.work * 4 >= total * 3 {
                    '#'
                } else if merged.work * 4 >= total {
                    '+'
                } else if merged.overhead >= merged.idle {
                    'o'
                } else {
                    '.'
                };
                out.push(ch);
            }
            out.push_str("|\n");
        }
        out
    }

    /// Work fraction per column (for plotting or assertions), averaged
    /// over cores.
    pub fn utilization_series(&self, width: usize) -> Vec<f64> {
        let width = width.max(1);
        let buckets = self.per_core.iter().map(Vec::len).max().unwrap_or(0);
        (0..width)
            .map(|col| {
                let lo = col * buckets / width;
                let hi = (((col + 1) * buckets).div_ceil(width)).min(buckets);
                let mut work = 0u64;
                let mut total = 0u64;
                for row in &self.per_core {
                    for b in row.get(lo..hi).unwrap_or(&[]) {
                        work += b.work;
                        total += b.total();
                    }
                }
                if total == 0 {
                    0.0
                } else {
                    work as f64 / total as f64
                }
            })
            .collect()
    }
}

/// What a core spent cycles on (engine-internal classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Executing instructions.
    Work,
    /// Fork/steal/join/interrupt charges.
    Overhead,
    /// Nothing to do.
    Idle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate() {
        let mut t = Timeline::new(2, 100);
        t.record(0, 0, Activity::Work, 80);
        t.record(0, 50, Activity::Idle, 20);
        t.record(1, 150, Activity::Overhead, 10);
        assert_eq!(t.core(0)[0].work, 80);
        assert_eq!(t.core(0)[0].idle, 20);
        assert_eq!(t.core(1)[1].overhead, 10);
    }

    #[test]
    fn render_shapes() {
        let mut t = Timeline::new(1, 10);
        for i in 0..10 {
            t.record(0, i * 10, Activity::Work, 10);
        }
        for i in 10..20 {
            t.record(0, i * 10, Activity::Idle, 10);
        }
        let s = t.render(20);
        assert!(s.starts_with("core  0 |"));
        let body: String = s.chars().filter(|c| "#+o. ".contains(*c)).collect();
        assert!(body.contains('#'), "{s}");
        assert!(body.contains('.'), "{s}");
    }

    #[test]
    fn record_span_matches_per_cycle_recording() {
        // Spans chosen to start mid-bucket, end mid-bucket, cover whole
        // buckets, and sit entirely inside one bucket.
        let spans = [
            (0usize, 7u64, Activity::Work, 250u64), // crosses 3 boundaries
            (0, 95, Activity::Overhead, 10),        // straddles one boundary
            (1, 40, Activity::Work, 5),             // within one bucket
            (1, 100, Activity::Idle, 100),          // exactly one bucket
            (1, 199, Activity::Work, 1),            // single cycle at bucket end
        ];
        let mut batched = Timeline::new(2, 100);
        let mut reference = Timeline::new(2, 100);
        for &(core, start, kind, cycles) in &spans {
            batched.record_span(core, start, kind, cycles);
            for i in 0..cycles {
                reference.record(core, start + i, kind, 1);
            }
        }
        for core in 0..2 {
            assert_eq!(batched.core(core), reference.core(core), "core {core}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        /// For arbitrary (start, cycles, bucket size), one `record_span`
        /// call equals `cycles` unit `record` calls — the equivalence the
        /// batching engine's timeline charging rests on.
        #[test]
        fn record_span_equals_per_cycle_record(
            start in 0u64..10_000,
            cycles in 0u64..2_000,
            bucket in 1u64..512,
        ) {
            let mut batched = Timeline::new(1, bucket);
            let mut reference = Timeline::new(1, bucket);
            batched.record_span(0, start, Activity::Work, cycles);
            for i in 0..cycles {
                reference.record(0, start + i, Activity::Work, 1);
            }
            proptest::prop_assert_eq!(batched.core(0), reference.core(0));
        }
    }

    #[test]
    fn record_span_of_zero_cycles_records_nothing() {
        let mut t = Timeline::new(1, 10);
        t.record_span(0, 5, Activity::Work, 0);
        assert!(t.core(0).is_empty());
    }

    #[test]
    fn utilization_series_bounds() {
        let mut t = Timeline::new(2, 10);
        t.record(0, 0, Activity::Work, 10);
        t.record(1, 0, Activity::Idle, 10);
        let u = t.utilization_series(4);
        assert_eq!(u.len(), 4);
        assert!((u[0] - 0.5).abs() < 1e-9);
    }
}
