//! The discrete-event multicore engine.

use tpal_core::isa::Reg;
use tpal_core::machine::{
    resolve_join, step_task, JoinResolution, MachineError, PromotionOrder, StepOutcome, Stores,
    TaskState, Value,
};
use tpal_core::program::Program;

use crate::rng::SplitMix64;
use crate::timeline::{Activity, Timeline};

/// How heartbeat interrupts reach the cores (§3.2 and §5 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptModel {
    /// Per-core timer interrupts (Nautilus: APIC timer + Nemo IPIs).
    /// Every core's flag is raised exactly every ♥ cycles; servicing
    /// costs `service_cost` cycles on the interrupted core.
    PerCoreTimer {
        /// Cycles charged to the core per delivered interrupt.
        service_cost: u64,
    },
    /// A dedicated ping thread delivering OS signals to the cores one at
    /// a time (the Linux INT-PingThread mechanism). Each delivery
    /// occupies the signaller for `latency ± jitter` cycles, so a full
    /// round over `P` cores takes about `P × latency`; when that exceeds
    /// ♥ the target heartbeat rate is missed, as in Figure 10.
    PingThread {
        /// Signaller cycles per delivered signal.
        latency: u64,
        /// Uniform jitter added to each delivery, `[0, jitter]`.
        jitter: u64,
        /// Cycles charged to the receiving core per signal (kernel
        /// signal-frame overhead).
        service_cost: u64,
    },
    /// No heartbeats: latent parallelism is never promoted.
    Disabled,
}

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of worker cores `P`.
    pub cores: usize,
    /// The heartbeat interval ♥, in cycles.
    pub heartbeat: u64,
    /// The interrupt mechanism.
    pub interrupt: InterruptModel,
    /// Extra cycles charged for executing `fork` (task allocation and
    /// deque push — the per-task cost τ that heartbeat scheduling
    /// amortises).
    pub fork_cost: u64,
    /// Cycles for a successful steal (task migration).
    pub steal_cost: u64,
    /// Cycles an idle core spends on a failed steal attempt.
    pub steal_retry_cost: u64,
    /// Cycles charged for join resolution (stash or merge).
    pub join_cost: u64,
    /// RNG seed (victim selection, delivery jitter).
    pub seed: u64,
    /// Abort after this many executed instructions.
    pub step_limit: u64,
    /// Record a per-core activity [`Timeline`] (bucketed at ♥/2 cycles)
    /// in the outcome. Costs one branch per cycle and O(time/♥) memory.
    pub record_timeline: bool,
    /// Which promotion-ready mark `prmsplit` pops: the paper's
    /// outermost-first policy (§2.3) or its innermost-first ablation.
    pub promotion_order: PromotionOrder,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 15,
            heartbeat: 3_000,
            interrupt: InterruptModel::PerCoreTimer { service_cost: 5 },
            fork_cost: 100,
            steal_cost: 600,
            steal_retry_cost: 50,
            join_cost: 50,
            seed: 0xDEC0DE,
            step_limit: 20_000_000_000,
            record_timeline: false,
            promotion_order: PromotionOrder::OldestFirst,
        }
    }
}

impl SimConfig {
    /// The Linux-like configuration: ping-thread signal delivery.
    pub fn linux(cores: usize, heartbeat: u64) -> Self {
        SimConfig {
            cores,
            heartbeat,
            interrupt: InterruptModel::PingThread {
                latency: 110,
                jitter: 60,
                service_cost: 60,
            },
            ..SimConfig::default()
        }
    }

    /// The Nautilus-like configuration: per-core timer interrupts.
    pub fn nautilus(cores: usize, heartbeat: u64) -> Self {
        SimConfig {
            cores,
            heartbeat,
            interrupt: InterruptModel::PerCoreTimer { service_cost: 5 },
            ..SimConfig::default()
        }
    }

    /// Serial execution: one core, no interrupts.
    pub fn serial() -> Self {
        SimConfig {
            cores: 1,
            interrupt: InterruptModel::Disabled,
            ..SimConfig::default()
        }
    }
}

/// Counters collected by a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Instructions executed (each costs one cycle).
    pub instructions: u64,
    /// Tasks created (`fork` executions — the paper's Figure 15a).
    pub forks: u64,
    /// Heartbeat handler invocations (promotion attempts).
    pub promotions: u64,
    /// `join` instructions executed.
    pub joins: u64,
    /// Pair merges at join resolution.
    pub merges: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts.
    pub failed_steals: u64,
    /// Heartbeat interrupts delivered to cores.
    pub heartbeats_delivered: u64,
    /// Cycles cores spent executing instructions (useful work).
    pub work_cycles: u64,
    /// Cycles lost to fork, steal, join, and interrupt overheads.
    pub overhead_cycles: u64,
    /// Cycles cores sat idle with nothing to run.
    pub idle_cycles: u64,
    /// High-water mark of runnable tasks (running + queued).
    pub max_live_tasks: usize,
}

/// The outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Makespan: simulated cycles from start to `halt`.
    pub time: u64,
    /// Counters.
    pub stats: SimStats,
    /// Cores simulated.
    pub cores: usize,
    /// The heartbeat interval ♥ the run targeted.
    pub heartbeat: u64,
    /// Per-core activity timeline, when
    /// [`SimConfig::record_timeline`] was set.
    pub timeline: Option<Timeline>,
    final_regs: Vec<(String, Value)>,
}

impl SimOutcome {
    /// Reads an integer register of the halting task.
    pub fn read_reg(&self, name: &str) -> Option<i64> {
        self.final_regs.iter().find_map(|(n, v)| {
            if n == name {
                match v {
                    Value::Int(x) => Some(*x),
                    _ => None,
                }
            } else {
                None
            }
        })
    }

    /// Utilization: the fraction of core-cycles spent on useful work
    /// (Figure 15b).
    pub fn utilization(&self) -> f64 {
        self.stats.work_cycles as f64 / (self.time.max(1) as f64 * self.cores as f64)
    }

    /// The heartbeat rate actually achieved, as a fraction of the target
    /// rate `cores / ♥` (Figure 10).
    pub fn heartbeat_rate_achieved(&self) -> f64 {
        let target = (self.time / self.heartbeat.max(1)) * self.cores as u64;
        if target == 0 {
            return 1.0;
        }
        self.stats.heartbeats_delivered as f64 / target as f64
    }

    /// The parallelism actually realised: instruction cycles divided by
    /// makespan (equals the speedup over a 1-core run of the same
    /// instruction stream).
    pub fn speedup_base(&self) -> f64 {
        self.stats.work_cycles as f64 / self.time.max(1) as f64
    }
}

struct Core {
    current: Option<TaskState>,
    deque: std::collections::VecDeque<TaskState>,
    busy_until: u64,
    hb_flag: bool,
    next_hb: u64,
}

/// The multicore simulator. Mirrors the [`tpal_core::machine::Machine`]
/// API: construct, seed inputs, [`Sim::run`].
pub struct Sim<'p> {
    program: &'p Program,
    config: SimConfig,
    stores: Stores,
    initial: Option<TaskState>,
}

impl<'p> Sim<'p> {
    /// Creates a simulator whose initial task starts at the program's
    /// entry block on core 0.
    pub fn new(program: &'p Program, config: SimConfig) -> Self {
        assert!(config.cores > 0, "at least one core required");
        let mut stores = Stores::new();
        stores.stacks.set_promotion_order(config.promotion_order);
        Sim {
            program,
            config,
            stores,
            initial: Some(TaskState::new(program, program.entry())),
        }
    }

    /// Seeds an integer argument register of the initial task.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_reg(&mut self, name: &str, value: i64) -> Result<(), MachineError> {
        let reg = self
            .program
            .reg(name)
            .ok_or_else(|| MachineError::UnknownName {
                name: name.to_owned(),
            })?;
        self.initial
            .as_mut()
            .expect("simulation already run")
            .regs
            .write(reg, Value::Int(value));
        Ok(())
    }

    /// Allocates and initialises a heap array before the run.
    pub fn alloc_array(&mut self, data: &[i64]) -> i64 {
        self.stores.heap.alloc_init(data)
    }

    /// Allocates a zeroed heap array before the run.
    pub fn alloc_zeroed(&mut self, len: usize) -> i64 {
        self.stores.heap.alloc(len)
    }

    /// Read access to the heap (e.g. to extract output arrays after the
    /// run).
    pub fn heap(&self) -> &tpal_core::machine::Heap {
        &self.stores.heap
    }

    /// Runs the simulation to `halt`.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a task, [`MachineError::Deadlock`]
    /// if all cores go idle with no runnable task before a `halt`, or
    /// [`MachineError::StepLimitExceeded`].
    pub fn run(&mut self) -> Result<SimOutcome, MachineError> {
        let cfg = self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        let mut stats = SimStats::default();
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|_| Core {
                current: None,
                deque: std::collections::VecDeque::new(),
                busy_until: 0,
                hb_flag: false,
                next_hb: cfg.heartbeat,
            })
            .collect();
        cores[0].current = Some(self.initial.take().expect("simulation already run"));

        // Ping-thread signaller state.
        let mut ping_next_core: usize = 0;
        let mut ping_next_time: u64 = cfg.heartbeat;
        let mut ping_round_start: u64 = cfg.heartbeat;

        let mut now: u64 = 0;
        #[allow(unused_assignments)]
        let mut halted: Option<TaskState> = None;
        let mut live_tasks: usize = 1;
        let mut timeline = if cfg.record_timeline {
            Some(Timeline::new(cfg.cores, (cfg.heartbeat / 2).max(64)))
        } else {
            None
        };
        macro_rules! trace {
            ($core:expr, $kind:expr, $cycles:expr) => {
                if let Some(tl) = &mut timeline {
                    tl.record($core, now, $kind, $cycles);
                }
            };
        }

        'sim: loop {
            now += 1;

            // Interrupt delivery.
            match cfg.interrupt {
                InterruptModel::PerCoreTimer { service_cost } => {
                    for (ci, core) in cores.iter_mut().enumerate() {
                        if now >= core.next_hb {
                            core.hb_flag = true;
                            core.next_hb += cfg.heartbeat;
                            core.busy_until = core.busy_until.max(now) + service_cost;
                            stats.heartbeats_delivered += 1;
                            stats.overhead_cycles += service_cost;
                            trace!(ci, Activity::Overhead, service_cost);
                        }
                    }
                }
                InterruptModel::PingThread {
                    latency,
                    jitter,
                    service_cost,
                } => {
                    if now >= ping_next_time {
                        let core = &mut cores[ping_next_core];
                        core.hb_flag = true;
                        core.busy_until = core.busy_until.max(now) + service_cost;
                        stats.heartbeats_delivered += 1;
                        stats.overhead_cycles += service_cost;
                        trace!(ping_next_core, Activity::Overhead, service_cost);
                        let delay = latency + if jitter > 0 { rng.below(jitter + 1) } else { 0 };
                        ping_next_core += 1;
                        if ping_next_core == cfg.cores {
                            // Round complete: rest until the next beat.
                            ping_next_core = 0;
                            ping_round_start += cfg.heartbeat;
                            ping_next_time = (now + delay).max(ping_round_start);
                        } else {
                            ping_next_time = now + delay;
                        }
                    }
                }
                InterruptModel::Disabled => {}
            }

            let mut all_idle = true;
            for c in 0..cfg.cores {
                if cores[c].busy_until > now {
                    all_idle = false;
                    continue;
                }
                // Acquire work if idle.
                if cores[c].current.is_none() {
                    if let Some(t) = cores[c].deque.pop_back() {
                        cores[c].current = Some(t);
                    } else if cfg.cores > 1 {
                        // Randomized steal from another core's top.
                        let victim = (c + 1 + rng.below(cfg.cores as u64 - 1) as usize) % cfg.cores;
                        let stolen = cores[victim].deque.pop_front();
                        match stolen {
                            Some(t) => {
                                cores[c].current = Some(t);
                                cores[c].busy_until = now + cfg.steal_cost;
                                stats.steals += 1;
                                stats.overhead_cycles += cfg.steal_cost;
                                trace!(c, Activity::Overhead, cfg.steal_cost);
                                all_idle = false;
                                continue;
                            }
                            None => {
                                cores[c].busy_until = now + cfg.steal_retry_cost;
                                stats.failed_steals += 1;
                                stats.idle_cycles += cfg.steal_retry_cost;
                                trace!(c, Activity::Idle, cfg.steal_retry_cost);
                                continue;
                            }
                        }
                    } else {
                        stats.idle_cycles += 1;
                        trace!(c, Activity::Idle, 1);
                        continue;
                    }
                }
                all_idle = false;

                let mut task = cores[c].current.take().expect("task present");

                // Pending heartbeat: serviced at the next promotion-ready
                // program point (rollforward semantics).
                if cores[c].hb_flag {
                    if let Some(handler) = task.at_promotion_point(self.program) {
                        task.divert_to_handler(handler);
                        cores[c].hb_flag = false;
                        stats.promotions += 1;
                    }
                }

                match step_task(self.program, &mut task, &mut self.stores)? {
                    StepOutcome::Ran => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        cores[c].busy_until = now + 1;
                        cores[c].current = Some(task);
                    }
                    StepOutcome::Halted => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        halted = Some(task);
                        break 'sim;
                    }
                    StepOutcome::Forked { child } => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        trace!(c, Activity::Overhead, cfg.fork_cost);
                        stats.forks += 1;
                        cores[c].deque.push_back(*child);
                        cores[c].busy_until = now + 1 + cfg.fork_cost;
                        stats.overhead_cycles += cfg.fork_cost;
                        cores[c].current = Some(task);
                        live_tasks += 1;
                        stats.max_live_tasks = stats.max_live_tasks.max(live_tasks);
                    }
                    StepOutcome::Joined { jr } => {
                        stats.instructions += 1;
                        stats.work_cycles += 1;
                        trace!(c, Activity::Work, 1);
                        trace!(c, Activity::Overhead, cfg.join_cost);
                        stats.joins += 1;
                        cores[c].busy_until = now + 1 + cfg.join_cost;
                        stats.overhead_cycles += cfg.join_cost;
                        match resolve_join(self.program, task, jr, &mut self.stores, 0)? {
                            JoinResolution::TaskDied => {
                                live_tasks -= 1;
                            }
                            JoinResolution::Merged(t) => {
                                stats.merges += 1;
                                cores[c].current = Some(*t);
                            }
                            JoinResolution::Completed(t) => {
                                cores[c].current = Some(*t);
                            }
                        }
                    }
                }
                if stats.instructions > cfg.step_limit {
                    return Err(MachineError::StepLimitExceeded {
                        limit: cfg.step_limit,
                    });
                }
            }

            if all_idle
                && cores
                    .iter()
                    .all(|c| c.current.is_none() && c.deque.is_empty())
                && cores.iter().all(|c| c.busy_until <= now)
            {
                return Err(MachineError::Deadlock);
            }
        }

        let halted = halted.expect("loop exits via halt");
        let final_regs = (0..self.program.reg_count())
            .map(|i| {
                let r = Reg::from_index(i);
                (self.program.reg_name(r).to_owned(), halted.regs.read_raw(r))
            })
            .collect();

        Ok(SimOutcome {
            time: now,
            stats,
            cores: cfg.cores,
            heartbeat: cfg.heartbeat,
            timeline,
            final_regs,
        })
    }
}
