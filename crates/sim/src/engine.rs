//! The discrete-event multicore engine.
//!
//! [`Sim`] replaces the original cycle-tick loop (preserved as
//! [`SimRef`](crate::SimRef)) with a discrete-event formulation: a
//! binary-heap event queue orders interrupt deliveries and core actions
//! by `(time, phase, core)`, and between scheduling-relevant boundaries
//! each core executes whole *runs* of straight-line instructions in one
//! [`ExecBackend::run_until`] call over the configured execution tier
//! (reference, decoded micro-ops, or threaded code — compiled once per
//! [`Sim`] and shared by every core and task, see
//! [`SimConfig::exec_tier`]) instead of one `step_task` round-trip per
//! cycle.
//! Simulated time jumps from event to event, so the cost of a run is
//! O(instructions + events·log events) rather than
//! O(makespan × cores).
//!
//! The two engines are observably equivalent — identical makespan,
//! [`SimStats`], and final registers for every program × configuration ×
//! seed — which the `engine_equivalence` differential suite enforces.
//! See `DESIGN.md` for the equivalence argument.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tpal_core::isa::Reg;
use tpal_core::machine::{
    resolve_join, step_task, JoinResolution, MachineError, PromotionOrder, RunPause, StepOutcome,
    Stores, TaskState, Value,
};
use tpal_core::program::Program;
use tpal_core::tier::{ExecBackend, ExecTier};

use tpal_sched::{
    HeartbeatDelivery, InterruptModel, PingChain, Policy, PromoteState, PromoteStep,
    PromotionPolicy, RngEnv, SplitMix64, VictimPolicy,
};
use tpal_trace::{EventKind, OverheadKind, Trace, TraceBuilder};

use crate::timeline::{Activity, Timeline};

/// Simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of worker cores `P`.
    pub cores: usize,
    /// The heartbeat interval ♥, in cycles.
    pub heartbeat: u64,
    /// The interrupt mechanism.
    pub interrupt: InterruptModel,
    /// Extra cycles charged for executing `fork` (task allocation and
    /// deque push — the per-task cost τ that heartbeat scheduling
    /// amortises).
    pub fork_cost: u64,
    /// Cycles for a successful steal (task migration).
    pub steal_cost: u64,
    /// Cycles an idle core spends on a failed steal attempt.
    pub steal_retry_cost: u64,
    /// Cycles charged for join resolution (stash or merge).
    pub join_cost: u64,
    /// RNG seed (victim selection, delivery jitter).
    pub seed: u64,
    /// Abort after this many executed instructions.
    pub step_limit: u64,
    /// Record a per-core activity [`Timeline`] (bucketed at ♥/2 cycles)
    /// in the outcome. Costs one branch per cycle and O(time/♥) memory.
    pub record_timeline: bool,
    /// Record a full structured [`Trace`] (task lifecycle events and
    /// per-core activity spans) in the outcome. Off by default: when
    /// off, every record site is one `Option`/`None` branch and nothing
    /// is allocated; when on, memory is O(events).
    pub record_trace: bool,
    /// Which promotion-ready mark `prmsplit` pops: the paper's
    /// outermost-first policy (§2.3) or its innermost-first ablation.
    pub promotion_order: PromotionOrder,
    /// The scheduling policy: when promotion-ready points promote and
    /// whom a thief probes. The default (`heartbeat/uniform`) is the
    /// pre-kernel behaviour, bit for bit.
    pub policy: Policy,
    /// Which interpreter tier executes task quanta. All tiers are
    /// bit-identical in outcome; they differ only in dispatch speed.
    pub exec_tier: ExecTier,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cores: 15,
            heartbeat: 3_000,
            interrupt: InterruptModel::PerCoreTimer { service_cost: 5 },
            fork_cost: 100,
            steal_cost: 600,
            steal_retry_cost: 50,
            join_cost: 50,
            seed: 0xDEC0DE,
            step_limit: 20_000_000_000,
            record_timeline: false,
            record_trace: false,
            promotion_order: PromotionOrder::OldestFirst,
            policy: Policy::default(),
            exec_tier: ExecTier::default(),
        }
    }
}

impl SimConfig {
    /// The Linux-like configuration: ping-thread signal delivery.
    pub fn linux(cores: usize, heartbeat: u64) -> Self {
        SimConfig {
            cores,
            heartbeat,
            interrupt: InterruptModel::PingThread {
                latency: 110,
                jitter: 60,
                service_cost: 60,
            },
            ..SimConfig::default()
        }
    }

    /// The Nautilus-like configuration: per-core timer interrupts.
    pub fn nautilus(cores: usize, heartbeat: u64) -> Self {
        SimConfig {
            cores,
            heartbeat,
            interrupt: InterruptModel::PerCoreTimer { service_cost: 5 },
            ..SimConfig::default()
        }
    }

    /// Serial execution: one core, no interrupts.
    pub fn serial() -> Self {
        SimConfig {
            cores: 1,
            interrupt: InterruptModel::Disabled,
            ..SimConfig::default()
        }
    }
}

/// Counters collected by a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Instructions executed (each costs one cycle).
    pub instructions: u64,
    /// Tasks created (`fork` executions — the paper's Figure 15a).
    pub forks: u64,
    /// Heartbeat handler invocations (promotion attempts).
    pub promotions: u64,
    /// `join` instructions executed.
    pub joins: u64,
    /// Pair merges at join resolution.
    pub merges: u64,
    /// Successful steals.
    pub steals: u64,
    /// Failed steal attempts.
    pub failed_steals: u64,
    /// Heartbeat interrupts delivered to cores.
    pub heartbeats_delivered: u64,
    /// Cycles cores spent executing instructions (useful work).
    pub work_cycles: u64,
    /// Cycles lost to fork, steal, join, and interrupt overheads.
    pub overhead_cycles: u64,
    /// Cycles cores sat idle with nothing to run.
    pub idle_cycles: u64,
    /// High-water mark of runnable tasks (running + queued).
    pub max_live_tasks: usize,
}

/// The outcome of a simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Makespan: simulated cycles from start to `halt`.
    pub time: u64,
    /// Counters.
    pub stats: SimStats,
    /// Cores simulated.
    pub cores: usize,
    /// The heartbeat interval ♥ the run targeted.
    pub heartbeat: u64,
    /// Per-core activity timeline, when
    /// [`SimConfig::record_timeline`] was set.
    pub timeline: Option<Timeline>,
    /// Structured event trace, when [`SimConfig::record_trace`] was set.
    pub trace: Option<Trace>,
    /// Total work T₁ of the computation in cycles (the machine's own
    /// fork/join-threaded accounting, τ = 0 — instruction cycles only).
    pub work: u64,
    /// Critical-path span T∞ in cycles (same accounting).
    pub span: u64,
    pub(crate) final_regs: Vec<(String, Value)>,
}

impl SimOutcome {
    /// Reads an integer register of the halting task.
    pub fn read_reg(&self, name: &str) -> Option<i64> {
        self.final_regs.iter().find_map(|(n, v)| {
            if n == name {
                match v {
                    Value::Int(x) => Some(*x),
                    _ => None,
                }
            } else {
                None
            }
        })
    }

    /// All named registers of the halting task, in declaration order.
    pub fn final_regs(&self) -> &[(String, Value)] {
        &self.final_regs
    }

    /// Utilization: the fraction of core-cycles spent on useful work
    /// (Figure 15b).
    pub fn utilization(&self) -> f64 {
        self.stats.work_cycles as f64 / (self.time.max(1) as f64 * self.cores as f64)
    }

    /// The heartbeat rate actually achieved, as a fraction of the target
    /// rate `cores / ♥` (Figure 10).
    pub fn heartbeat_rate_achieved(&self) -> f64 {
        // Computed in f64: the old integer form `(time / ♥) * cores`
        // truncated time/♥ downward, overstating the achieved fraction
        // for runs that are not a whole number of beats long.
        let target = (self.time as f64 / self.heartbeat.max(1) as f64) * self.cores as f64;
        if target == 0.0 {
            return 1.0;
        }
        self.stats.heartbeats_delivered as f64 / target
    }

    /// The parallelism actually realised: instruction cycles divided by
    /// makespan (equals the speedup over a 1-core run of the same
    /// instruction stream).
    pub fn speedup_base(&self) -> f64 {
        self.stats.work_cycles as f64 / self.time.max(1) as f64
    }

    /// Available parallelism T₁/T∞ of the computation itself (what an
    /// ideal scheduler could exploit, independent of this run's `P`).
    pub fn parallelism(&self) -> f64 {
        self.work as f64 / self.span.max(1) as f64
    }
}

struct Core {
    current: Option<TaskState>,
    deque: std::collections::VecDeque<TaskState>,
    busy_until: u64,
    /// Promotion-policy state (delivered-beat flag, adaptive spacing,
    /// eager bounce guard) — consumed by [`PromotionPolicy`].
    promote: PromoteState,
    next_hb: u64,
    /// Monotone steal-probe counter, consumed by the deterministic
    /// [`VictimPolicy`] orders (unused under `uniform`).
    probe_k: u64,
}

/// A scheduled event, ordered by `(time, phase, core)` so that the heap
/// replays exactly the order the cycle-tick reference visits things
/// within one cycle: first interrupt delivery (phase 0), then the cores
/// in index order (phase 1). Matching that order is what keeps the RNG
/// stream (ping jitter before same-cycle steals, steals by core index)
/// and all shared-store effects identical to [`SimRef`](crate::SimRef).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: u64,
    phase: u8,
    core: u32,
}

const PHASE_INTERRUPT: u8 = 0;
const PHASE_ACTION: u8 = 1;

fn push_action(queue: &mut BinaryHeap<Reverse<Event>>, core: usize, time: u64) {
    queue.push(Reverse(Event {
        time,
        phase: PHASE_ACTION,
        core: core as u32,
    }));
}

/// The multicore simulator. Mirrors the [`tpal_core::machine::Machine`]
/// API: construct, seed inputs, [`Sim::run`].
pub struct Sim<'p> {
    program: &'p Program,
    /// The program compiled for the configured execution tier — once
    /// here, shared by every core and task for the whole run.
    backend: ExecBackend,
    config: SimConfig,
    stores: Stores,
    initial: Option<TaskState>,
}

impl<'p> Sim<'p> {
    /// Creates a simulator whose initial task starts at the program's
    /// entry block on core 0.
    pub fn new(program: &'p Program, config: SimConfig) -> Self {
        let backend = ExecBackend::new(program, config.exec_tier);
        Sim::with_backend(program, backend, config)
    }

    /// Creates a simulator reusing a pre-compiled execution backend —
    /// the decode-once path for services that run one validated program
    /// many times (`tpal-serve`): the caller pays
    /// [`ExecBackend::new`]'s decode/compile cost once per program and
    /// hands each run a clone of the compiled artifact (a flat-array
    /// memcpy, no re-analysis).
    ///
    /// # Panics
    ///
    /// If `backend` was compiled for a different tier than
    /// `config.exec_tier`, or `config.cores` is zero.
    pub fn with_backend(program: &'p Program, backend: ExecBackend, config: SimConfig) -> Self {
        assert!(config.cores > 0, "at least one core required");
        assert_eq!(
            backend.tier(),
            config.exec_tier,
            "backend tier must match config.exec_tier"
        );
        let mut stores = Stores::new();
        stores.stacks.set_promotion_order(config.promotion_order);
        Sim {
            program,
            backend,
            config,
            stores,
            initial: Some(TaskState::new(program, program.entry())),
        }
    }

    /// Seeds an integer argument register of the initial task.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_reg(&mut self, name: &str, value: i64) -> Result<(), MachineError> {
        let reg = self.program.reg(name).ok_or(MachineError::UnknownName)?;
        self.initial
            .as_mut()
            .expect("simulation already run")
            .regs
            .write(reg, Value::Int(value));
        Ok(())
    }

    /// Allocates and initialises a heap array before the run.
    pub fn alloc_array(&mut self, data: &[i64]) -> i64 {
        self.stores.heap.alloc_init(data)
    }

    /// Allocates a zeroed heap array before the run.
    pub fn alloc_zeroed(&mut self, len: usize) -> i64 {
        self.stores.heap.alloc(len)
    }

    /// Read access to the heap (e.g. to extract output arrays after the
    /// run).
    pub fn heap(&self) -> &tpal_core::machine::Heap {
        &self.stores.heap
    }

    /// Runs the simulation to `halt`.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a task, [`MachineError::Deadlock`]
    /// if all cores go idle with no runnable task before a `halt`, or
    /// [`MachineError::StepLimitExceeded`].
    pub fn run(&mut self) -> Result<SimOutcome, MachineError> {
        let cfg = self.config;
        let mut rng = SplitMix64::new(cfg.seed);
        // RNG draws one steal probe consumes — the parked-core
        // fast-forward must skip exactly this much stream per settled
        // retry.
        let steal_draws = cfg.policy.victim.draws_per_probe();
        let mut stats = SimStats::default();
        let mut cores: Vec<Core> = (0..cfg.cores)
            .map(|_| Core {
                current: None,
                deque: std::collections::VecDeque::new(),
                busy_until: 0,
                promote: PromoteState::default(),
                next_hb: cfg.heartbeat,
                probe_k: 0,
            })
            .collect();
        cores[0].current = Some(self.initial.take().expect("simulation already run"));

        // Ping-thread signaller state. Unlike the reference (which tests
        // `now >= ping.next_time` once per cycle), `ping.next_time` here
        // is always the exact cycle of the next delivery, i.e. already
        // clamped to be strictly after the previous one.
        let mut ping = PingChain::new(cfg.heartbeat.max(1), cfg.heartbeat);

        let mut live_tasks: usize = 1;
        // Tasks sitting in deques right now. Zero means every steal
        // attempt is a forced failure, which licenses parking (below).
        let mut queued: usize = 0;
        // Parked cores: idle cores fast-forwarded through forced-failure
        // steal retries. A parked core keeps no action event in the
        // queue; `busy_until` holds its next *not yet counted* retry
        // time, and `flush_parked!` settles the retries lazily.
        let mut parked: Vec<bool> = vec![false; cfg.cores];
        let mut parked_count: usize = 0;
        let mut timeline = if cfg.record_timeline {
            Some(Timeline::new(cfg.cores, (cfg.heartbeat / 2).max(64)))
        } else {
            None
        };
        macro_rules! trace {
            ($core:expr, $time:expr, $kind:expr, $cycles:expr) => {
                if let Some(tl) = &mut timeline {
                    tl.record($core, $time, $kind, $cycles);
                }
            };
        }

        // Structured event tracing. Task identity is tracked *beside* the
        // task states (per-core current id + an id deque mirroring each
        // work deque) and only when tracing is on, so the traced-off path
        // is exactly the code above plus one `None` branch per site.
        let mut tracer = if cfg.record_trace {
            Some(TraceBuilder::new(cfg.cores, "cycles", cfg.heartbeat).policy(cfg.policy.label()))
        } else {
            None
        };
        let mut next_task_id: u64 = 1; // the initial task is id 0
        let mut current_id: Vec<u64> = vec![0; cfg.cores];
        let mut queued_ids: Vec<std::collections::VecDeque<u64>> =
            vec![std::collections::VecDeque::new(); cfg.cores];
        macro_rules! tev {
            ($core:expr, $ts:expr, $dur:expr, $kind:expr) => {
                if let Some(tb) = &mut tracer {
                    tb.record($core, $ts, $dur, $kind);
                }
            };
        }

        // Settles core `$p`'s pending retries at virtual times strictly
        // before `$bound`. Each settled retry charges the same counters
        // and timeline record as a live failed steal and advances the RNG
        // stream by one draw — the drawn victim is unobservable (every
        // deque is empty while any core is parked), but the stream
        // position is, hence the O(1) `skip`.
        macro_rules! flush_one {
            ($p:expr, $bound:expr) => {
                let next = cores[$p].busy_until;
                if next < $bound {
                    let retry = cfg.steal_retry_cost;
                    let k = ($bound - 1 - next) / retry + 1;
                    rng.skip(k * steal_draws);
                    cores[$p].probe_k += k;
                    stats.failed_steals += k;
                    stats.idle_cycles += k * retry;
                    if let Some(tl) = &mut timeline {
                        for i in 0..k {
                            tl.record($p, next + i * retry, Activity::Idle, retry);
                        }
                    }
                    if let Some(tb) = &mut tracer {
                        // Settled retroactively: these idle spans carry
                        // later sequence numbers than events at greater
                        // timestamps, which is why renderers sort by ts.
                        for i in 0..k {
                            tb.record($p, next + i * retry, retry, EventKind::Idle);
                        }
                    }
                    cores[$p].busy_until = next + k * retry;
                }
            };
        }

        // Settles every parked core's pending retries that virtually
        // precede event `$ev`. A retry of core `p` occupies queue
        // position `(t, PHASE_ACTION, p)`, so it precedes the event if
        // `t < $ev.time`, or at `t == $ev.time` when the event is a later
        // core's action (the reference scans cores in index order within
        // a cycle).
        //
        // Settling is *deferred*: while cores are parked no RNG draw can
        // happen (steal draws require work in a deque, which would have
        // unparked everyone), so pure skips commute past every other
        // event. Flushing is needed only where the chains become
        // observable — before a ping delivery (its jitter draw must land
        // at the right stream position, and the receiving core's chain
        // shifts), at a fork (the chains go live again), at `halt` (the
        // counters become the outcome), and, per core, when a timer
        // interrupt shifts that one chain (see flush_one! at the timer
        // arm).
        macro_rules! flush_parked {
            ($ev:expr) => {
                if parked_count > 0 {
                    for p in 0..cfg.cores {
                        if !parked[p] {
                            continue;
                        }
                        let bound = if $ev.phase == PHASE_ACTION && (p as u32) < $ev.core {
                            $ev.time + 1
                        } else {
                            $ev.time
                        };
                        flush_one!(p, bound);
                    }
                }
            };
        }

        // Seed the queue: every core attempts an action on cycle 1 (the
        // reference's first tick), and the interrupt source fires its
        // first delivery chain.
        let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        for c in 0..cfg.cores {
            push_action(&mut queue, c, 1);
        }
        match cfg.interrupt {
            InterruptModel::PerCoreTimer { .. } | InterruptModel::JitteredTimer { .. } => {
                // The first deadline is exact in both models; jitter
                // enters at re-arm time, one draw per delivery.
                for (c, core) in cores.iter().enumerate() {
                    queue.push(Reverse(Event {
                        time: core.next_hb.max(1),
                        phase: PHASE_INTERRUPT,
                        core: c as u32,
                    }));
                }
            }
            InterruptModel::PingThread { .. } => {
                queue.push(Reverse(Event {
                    time: ping.next_time,
                    phase: PHASE_INTERRUPT,
                    core: ping.next_core as u32,
                }));
            }
            InterruptModel::Disabled => {}
        }

        let halted: TaskState;
        let end_time: u64;

        'sim: loop {
            // The queue can only drain before `halt` if interrupts are
            // disabled and every core is parked on an empty system — no
            // event can ever create work again. (The reference spins
            // forever on that degenerate program; an error is strictly
            // more useful.)
            let Some(Reverse(ev)) = queue.pop() else {
                return Err(MachineError::Deadlock);
            };
            let now = ev.time;

            if ev.phase == PHASE_INTERRUPT {
                match cfg.interrupt {
                    InterruptModel::PerCoreTimer { service_cost } => {
                        let ci = ev.core as usize;
                        if parked[ci] {
                            // The shift below applies to the retry
                            // pending at delivery time; settle the
                            // earlier ones first.
                            flush_one!(ci, now);
                        }
                        let core = &mut cores[ci];
                        core.promote.beat = true;
                        core.next_hb += cfg.heartbeat;
                        core.busy_until = core.busy_until.max(now) + service_cost;
                        stats.heartbeats_delivered += 1;
                        stats.overhead_cycles += service_cost;
                        trace!(ci, now, Activity::Overhead, service_cost);
                        tev!(ci, now, 0, EventKind::HeartbeatDelivered);
                        tev!(
                            ci,
                            now,
                            service_cost,
                            EventKind::Overhead {
                                what: OverheadKind::Interrupt
                            }
                        );
                        queue.push(Reverse(Event {
                            // `.max(now + 1)`: with ♥ = 0 the reference
                            // still delivers at most once per cycle.
                            time: core.next_hb.max(now + 1),
                            phase: PHASE_INTERRUPT,
                            core: ev.core,
                        }));
                    }
                    InterruptModel::JitteredTimer { service_cost, .. } => {
                        // The re-arm jitter draw below must land at the
                        // right stream position: settle all pending
                        // parked retries (each may carry draws) first.
                        flush_parked!(ev);
                        let ci = ev.core as usize;
                        let next = {
                            let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                            cfg.interrupt
                                .next_deadline(&mut env, cores[ci].next_hb, cfg.heartbeat)
                        };
                        let core = &mut cores[ci];
                        core.promote.beat = true;
                        core.next_hb = next;
                        core.busy_until = core.busy_until.max(now) + service_cost;
                        stats.heartbeats_delivered += 1;
                        stats.overhead_cycles += service_cost;
                        trace!(ci, now, Activity::Overhead, service_cost);
                        tev!(ci, now, 0, EventKind::HeartbeatDelivered);
                        tev!(
                            ci,
                            now,
                            service_cost,
                            EventKind::Overhead {
                                what: OverheadKind::Interrupt
                            }
                        );
                        queue.push(Reverse(Event {
                            time: core.next_hb.max(now + 1),
                            phase: PHASE_INTERRUPT,
                            core: ev.core,
                        }));
                    }
                    InterruptModel::PingThread { service_cost, .. } => {
                        // The jitter draw below must land at the right
                        // stream position, and the receiving core's
                        // chain shifts: settle all pending retries now.
                        flush_parked!(ev);
                        let ci = ping.next_core;
                        let core = &mut cores[ci];
                        core.promote.beat = true;
                        core.busy_until = core.busy_until.max(now) + service_cost;
                        stats.heartbeats_delivered += 1;
                        stats.overhead_cycles += service_cost;
                        trace!(ci, now, Activity::Overhead, service_cost);
                        tev!(ci, now, 0, EventKind::HeartbeatDelivered);
                        tev!(
                            ci,
                            now,
                            service_cost,
                            EventKind::Overhead {
                                what: OverheadKind::Interrupt
                            }
                        );
                        let delay = {
                            let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                            cfg.interrupt.ping_delay(&mut env)
                        };
                        ping.advance(now, cfg.cores, cfg.heartbeat, delay);
                        queue.push(Reverse(Event {
                            time: ping.next_time,
                            phase: PHASE_INTERRUPT,
                            core: ping.next_core as u32,
                        }));
                    }
                    InterruptModel::Disabled => unreachable!("no interrupt source armed"),
                }
                continue;
            }

            // Core action. Exactly one action event is outstanding per
            // core; if an interrupt pushed the core's busy horizon past
            // the scheduled time, re-arm at the new horizon.
            let c = ev.core as usize;
            if cores[c].busy_until > now {
                push_action(&mut queue, c, cores[c].busy_until);
                continue;
            }

            // Acquire work if idle.
            if cores[c].current.is_none() {
                if let Some(t) = cores[c].deque.pop_back() {
                    // Own pop is free; the task runs this very cycle.
                    queued -= 1;
                    cores[c].current = Some(t);
                    if tracer.is_some() {
                        current_id[c] = queued_ids[c].pop_back().expect("id mirrors deque");
                    }
                } else if cfg.cores > 1 {
                    if queued == 0 && cfg.steal_retry_cost > 0 {
                        // Every deque is empty: this attempt and every
                        // retry until a fork pushes work are forced
                        // failures. Park instead of simulating them —
                        // the retry chain (starting with this attempt,
                        // at `now`) is settled lazily by flush_parked!,
                        // and interrupts shift `busy_until` exactly as
                        // they would the live chain. The Forked arm
                        // re-arms parked cores.
                        parked[c] = true;
                        parked_count += 1;
                        cores[c].busy_until = now;
                        continue;
                    }
                    // Steal from another core's top; the policy picks
                    // the victim.
                    let victim = {
                        let mut env = RngEnv::new(&mut rng, now, cfg.cores);
                        cfg.policy.victim.probe(&mut env, c, 0, cores[c].probe_k)
                    };
                    cores[c].probe_k += 1;
                    let stolen = cores[victim].deque.pop_front();
                    match stolen {
                        Some(t) => {
                            queued -= 1;
                            cores[c].current = Some(t);
                            cores[c].busy_until = now + cfg.steal_cost;
                            stats.steals += 1;
                            stats.overhead_cycles += cfg.steal_cost;
                            trace!(c, now, Activity::Overhead, cfg.steal_cost);
                            if tracer.is_some() {
                                current_id[c] =
                                    queued_ids[victim].pop_front().expect("id mirrors deque");
                            }
                            tev!(
                                c,
                                now,
                                0,
                                EventKind::Steal {
                                    victim: victim as u32
                                }
                            );
                            tev!(
                                c,
                                now,
                                cfg.steal_cost,
                                EventKind::Overhead {
                                    what: OverheadKind::Steal
                                }
                            );
                        }
                        None => {
                            cores[c].busy_until = now + cfg.steal_retry_cost;
                            stats.failed_steals += 1;
                            stats.idle_cycles += cfg.steal_retry_cost;
                            trace!(c, now, Activity::Idle, cfg.steal_retry_cost);
                            tev!(c, now, cfg.steal_retry_cost, EventKind::Idle);
                            // With a zero retry cost the reference's
                            // end-of-cycle starvation check can fire (all
                            // cores free, empty, and idle this cycle);
                            // with a positive cost the freshly charged
                            // `busy_until` always defeats it there too.
                            if cfg.steal_retry_cost == 0
                                && cores.iter().all(|k| {
                                    k.current.is_none() && k.deque.is_empty() && k.busy_until <= now
                                })
                            {
                                return Err(MachineError::Deadlock);
                            }
                        }
                    }
                    // A core acts at most once per cycle.
                    push_action(&mut queue, c, cores[c].busy_until.max(now + 1));
                    continue;
                } else {
                    // Single core, nothing runnable, nothing queued: no
                    // task can ever appear again. (The reference charges
                    // one idle cycle first, but the error discards the
                    // outcome, so nothing observable is lost.)
                    return Err(MachineError::Deadlock);
                }
            }

            let mut task = cores[c].current.take().expect("task present");

            // Scheduling boundary: the promotion policy decides what a
            // promotion-ready point does with the delivered beat
            // (rollforward semantics — promotion happens only at
            // promotion-ready program points).
            let promo = cfg.policy.promotion;
            let mut step_past = false;
            if promo.wants_point_check(&cores[c].promote) {
                if let Some(handler) = task.at_promotion_point(self.program) {
                    match promo.decide(true, &mut cores[c].promote, now) {
                        PromoteStep::Divert => {
                            task.divert_to_handler(handler);
                            stats.promotions += 1;
                            tev!(c, now, 0, EventKind::HeartbeatServiced);
                            tev!(
                                c,
                                now,
                                0,
                                EventKind::TaskPromote {
                                    task: current_id[c]
                                }
                            );
                        }
                        PromoteStep::StepPast => step_past = true,
                        PromoteStep::Run => {}
                    }
                }
            }

            // Batch horizon: this core cannot be re-flagged before its
            // own next timer tick (PerCoreTimer/JitteredTimer — the
            // armed deadline is exact; jitter enters at re-arm) or the
            // signaller's next delivery to *anyone* (PingThread —
            // conservative, since the chain's future targets depend on
            // jitter draws that must stay in delivery order). Interrupts
            // at the horizon sort before the follow-up action, so the
            // flag is seen then.
            let horizon = match cfg.interrupt {
                InterruptModel::PerCoreTimer { .. } | InterruptModel::JitteredTimer { .. } => {
                    cores[c].next_hb.max(now + 1)
                }
                InterruptModel::PingThread { .. } => ping.next_time.max(now + 1),
                InterruptModel::Disabled => u64::MAX,
            };
            let allowed = cfg
                .step_limit
                .saturating_add(1)
                .saturating_sub(stats.instructions);
            // A declined point must execute exactly one instruction
            // unwatched (or the watch would pause at it again, forever).
            let max_steps = if step_past {
                1.min(allowed)
            } else {
                (horizon - now).min(allowed)
            };
            let watch = !step_past && promo.watch(&cores[c].promote);

            let (steps, pause) = self.backend.run_until(
                self.program,
                &mut task,
                &mut self.stores,
                max_steps,
                watch,
            )?;
            if steps > 0 {
                stats.instructions += steps;
                stats.work_cycles += steps;
                if let Some(tl) = &mut timeline {
                    tl.record_span(c, now, Activity::Work, steps);
                }
                tev!(
                    c,
                    now,
                    steps,
                    EventKind::Work {
                        task: current_id[c]
                    }
                );
                if stats.instructions > cfg.step_limit {
                    return Err(MachineError::StepLimitExceeded {
                        limit: cfg.step_limit,
                    });
                }
            }

            match pause {
                RunPause::Quantum | RunPause::PromotionReady => {
                    // Re-assess at the end of the run: the pending
                    // interrupt (Quantum) or the handler diversion
                    // (PromotionReady) happens on the next action.
                    cores[c].busy_until = now + steps;
                    cores[c].current = Some(task);
                    push_action(&mut queue, c, now + steps);
                }
                RunPause::Boundary if steps > 0 => {
                    // The boundary instruction must execute at its own
                    // virtual time: deque pushes, join-store transitions
                    // and allocations are globally ordered against other
                    // cores' events in (now, now + steps].
                    cores[c].busy_until = now + steps;
                    cores[c].current = Some(task);
                    push_action(&mut queue, c, now + steps);
                }
                RunPause::Boundary => {
                    // The very next instruction is the boundary: execute
                    // it this cycle, exactly as the reference does.
                    match step_task(self.program, &mut task, &mut self.stores)? {
                        StepOutcome::Ran => {
                            // jralloc / snew / halloc.
                            stats.instructions += 1;
                            stats.work_cycles += 1;
                            trace!(c, now, Activity::Work, 1);
                            tev!(
                                c,
                                now,
                                1,
                                EventKind::Work {
                                    task: current_id[c]
                                }
                            );
                            cores[c].busy_until = now + 1;
                            cores[c].current = Some(task);
                            push_action(&mut queue, c, now + 1);
                        }
                        StepOutcome::Halted => {
                            stats.instructions += 1;
                            stats.work_cycles += 1;
                            trace!(c, now, Activity::Work, 1);
                            tev!(
                                c,
                                now,
                                1,
                                EventKind::Work {
                                    task: current_id[c]
                                }
                            );
                            // The counters become the outcome: settle
                            // every parked core's retries up to the
                            // halt (earlier cores' attempts this very
                            // cycle included, as in the reference's
                            // in-order scan).
                            flush_parked!(ev);
                            tev!(
                                c,
                                now,
                                0,
                                EventKind::TaskEnd {
                                    task: current_id[c]
                                }
                            );
                            halted = task;
                            end_time = now;
                            break 'sim;
                        }
                        StepOutcome::Forked { child } => {
                            stats.instructions += 1;
                            stats.work_cycles += 1;
                            trace!(c, now, Activity::Work, 1);
                            trace!(c, now, Activity::Overhead, cfg.fork_cost);
                            if tracer.is_some() {
                                let child_id = next_task_id;
                                next_task_id += 1;
                                queued_ids[c].push_back(child_id);
                                tev!(
                                    c,
                                    now,
                                    1,
                                    EventKind::Work {
                                        task: current_id[c]
                                    }
                                );
                                tev!(
                                    c,
                                    now,
                                    0,
                                    EventKind::TaskSpawn {
                                        parent: current_id[c],
                                        child: child_id
                                    }
                                );
                                tev!(
                                    c,
                                    now,
                                    cfg.fork_cost,
                                    EventKind::Overhead {
                                        what: OverheadKind::Fork
                                    }
                                );
                            }
                            stats.forks += 1;
                            // The diversion produced a task: re-arm the
                            // eager policy's bounce guard.
                            promo.on_fork(&mut cores[c].promote);
                            cores[c].deque.push_back(*child);
                            queued += 1;
                            // Work exists again: settle every parked
                            // core's retries that precede this fork,
                            // then re-arm each at its next pending
                            // retry. Cores after this one in index
                            // order may retry at this very cycle and
                            // see the new task, exactly as the
                            // reference's in-cycle scan does.
                            if parked_count > 0 {
                                flush_parked!(ev);
                                for p in 0..cfg.cores {
                                    if parked[p] {
                                        parked[p] = false;
                                        push_action(&mut queue, p, cores[p].busy_until);
                                    }
                                }
                                parked_count = 0;
                            }
                            cores[c].busy_until = now + 1 + cfg.fork_cost;
                            stats.overhead_cycles += cfg.fork_cost;
                            cores[c].current = Some(task);
                            live_tasks += 1;
                            stats.max_live_tasks = stats.max_live_tasks.max(live_tasks);
                            push_action(&mut queue, c, cores[c].busy_until);
                        }
                        StepOutcome::Joined { jr } => {
                            stats.instructions += 1;
                            stats.work_cycles += 1;
                            trace!(c, now, Activity::Work, 1);
                            trace!(c, now, Activity::Overhead, cfg.join_cost);
                            tev!(
                                c,
                                now,
                                1,
                                EventKind::Work {
                                    task: current_id[c]
                                }
                            );
                            tev!(
                                c,
                                now,
                                cfg.join_cost,
                                EventKind::Overhead {
                                    what: OverheadKind::Join
                                }
                            );
                            stats.joins += 1;
                            cores[c].busy_until = now + 1 + cfg.join_cost;
                            stats.overhead_cycles += cfg.join_cost;
                            // The fork-tree node this task sits on, read
                            // before resolution consumes the task (trace
                            // runs only; `Root` means a completing join).
                            let assoc = if tracer.is_some() {
                                task.assoc(jr)
                            } else {
                                None
                            };
                            let node = |a| match a {
                                Some(tpal_core::machine::Assoc::Node { node, .. }) => {
                                    node.index() as u32
                                }
                                _ => 0,
                            };
                            match resolve_join(self.program, task, jr, &mut self.stores, 0)? {
                                JoinResolution::TaskDied => {
                                    live_tasks -= 1;
                                    tev!(
                                        c,
                                        now,
                                        0,
                                        EventKind::JoinStash {
                                            task: current_id[c],
                                            node: node(assoc)
                                        }
                                    );
                                }
                                JoinResolution::Merged(t) => {
                                    stats.merges += 1;
                                    cores[c].current = Some(*t);
                                    if tracer.is_some() {
                                        let merged = next_task_id;
                                        next_task_id += 1;
                                        tev!(
                                            c,
                                            now,
                                            0,
                                            EventKind::JoinMerge {
                                                task: current_id[c],
                                                node: node(assoc),
                                                merged
                                            }
                                        );
                                        current_id[c] = merged;
                                    }
                                }
                                JoinResolution::Completed(t) => {
                                    cores[c].current = Some(*t);
                                    if tracer.is_some() {
                                        let resumed = next_task_id;
                                        next_task_id += 1;
                                        tev!(
                                            c,
                                            now,
                                            0,
                                            EventKind::JoinContinue {
                                                task: current_id[c],
                                                resumed
                                            }
                                        );
                                        current_id[c] = resumed;
                                    }
                                }
                            }
                            push_action(&mut queue, c, cores[c].busy_until);
                        }
                    }
                    if stats.instructions > cfg.step_limit {
                        return Err(MachineError::StepLimitExceeded {
                            limit: cfg.step_limit,
                        });
                    }
                }
            }
        }

        let final_regs = (0..self.program.reg_count())
            .map(|i| {
                let r = Reg::from_index(i);
                (self.program.reg_name(r).to_owned(), halted.regs.read_raw(r))
            })
            .collect();

        Ok(SimOutcome {
            time: end_time,
            stats,
            cores: cfg.cores,
            heartbeat: cfg.heartbeat,
            timeline,
            trace: tracer.map(TraceBuilder::finish),
            // The halting task's fork/join-threaded counters are the
            // whole computation's totals (τ = 0 in this engine).
            work: halted.rel_work,
            span: halted.rel_span,
            final_regs,
        })
    }
}
