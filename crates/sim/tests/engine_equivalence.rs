//! Differential tests: the event-driven engine ([`Sim`]) — on **every
//! execution tier** (reference interpreter, decoded micro-ops, threaded
//! code) — must be *observably equivalent* to the cycle-tick reference
//! ([`SimRef`]): identical makespan, identical [`SimStats`] field by
//! field, and identical final registers, on real workload programs,
//! across every interrupt model and several RNG seeds.
//!
//! This suite is what licenses the event-queue + instruction-batching
//! rewrite and the tiered interpreters stacked on it: any scheduling
//! divergence (RNG consumption order, deque contents, allocation order,
//! interrupt timing) or tier-semantics divergence (quantum splits,
//! fault points, step accounting, promotion-watch behaviour) shows up
//! here as a mismatched counter or register.

use tpal_ir::lower::{lower, Mode};
use tpal_sim::{ExecTier, InterruptModel, Policy, Sim, SimConfig, SimRef};
use tpal_workloads::{workload, Scale, SimSpec};

const SEEDS: [u64; 3] = [0xDEC0DE, 1, 0xFEED_5EED];

fn configs() -> Vec<(&'static str, Mode, SimConfig)> {
    vec![
        ("serial", Mode::Serial, SimConfig::serial()),
        ("linux-4", Mode::Heartbeat, SimConfig::linux(4, 3_000)),
        ("nautilus-8", Mode::Heartbeat, SimConfig::nautilus(8, 3_000)),
    ]
}

/// Runs `spec` under `config` on [`SimRef`] once, then on [`Sim`] at
/// **each execution tier**, asserting observable equivalence plus the
/// workload checksum for every tier.
fn assert_pair_agrees(spec: &SimSpec, mode: Mode, config: SimConfig, ctx: &str) {
    let lowered = lower(&spec.ir, mode).unwrap_or_else(|e| panic!("lowering failed: {e}"));

    let mut ref_engine = SimRef::new(&lowered.program, config);
    for (pname, data) in &spec.input.arrays {
        let base_ref = ref_engine.alloc_array(data);
        ref_engine
            .set_reg(&lowered.param_reg(pname), base_ref)
            .unwrap();
    }
    for (pname, v) in &spec.input.ints {
        ref_engine.set_reg(&lowered.param_reg(pname), *v).unwrap();
    }
    let ref_out = ref_engine
        .run()
        .unwrap_or_else(|e| panic!("{ctx}: reference engine failed: {e}"));

    for tier in ExecTier::ALL {
        let mut config = config;
        config.exec_tier = tier;
        let mut new_engine = Sim::new(&lowered.program, config);
        for (pname, data) in &spec.input.arrays {
            let base_new = new_engine.alloc_array(data);
            new_engine
                .set_reg(&lowered.param_reg(pname), base_new)
                .unwrap();
        }
        for (pname, v) in &spec.input.ints {
            new_engine.set_reg(&lowered.param_reg(pname), *v).unwrap();
        }

        let new_out = new_engine
            .run()
            .unwrap_or_else(|e| panic!("{ctx} [{tier}]: new engine failed: {e}"));

        assert_eq!(new_out.time, ref_out.time, "{ctx} [{tier}]: makespan");
        assert_eq!(new_out.stats, ref_out.stats, "{ctx} [{tier}]: stats");
        assert_eq!(
            new_out.final_regs(),
            ref_out.final_regs(),
            "{ctx} [{tier}]: final registers"
        );
        assert_eq!(
            new_out.read_reg(&lowered.result_reg),
            Some(spec.expected),
            "{ctx} [{tier}]: checksum"
        );
    }
}

fn assert_engines_agree(name: &str) {
    let spec: SimSpec = workload(name)
        .expect("known workload")
        .sim_spec(Scale::Quick);
    for (label, mode, base) in configs() {
        for seed in SEEDS {
            let mut config = base;
            config.seed = seed;
            let ctx = format!("{name} / {label} / seed {seed:#x}");
            assert_pair_agrees(&spec, mode, config, &ctx);
        }
    }
}

#[test]
fn plus_reduce_array_engines_agree() {
    assert_engines_agree("plus-reduce-array");
}

#[test]
fn floyd_warshall_engines_agree() {
    assert_engines_agree("floyd-warshall-small");
}

#[test]
fn spmv_random_engines_agree() {
    assert_engines_agree("spmv-random");
}

#[test]
fn spmv_powerlaw_engines_agree() {
    assert_engines_agree("spmv-powerlaw");
}

#[test]
fn spmv_arrowhead_engines_agree() {
    assert_engines_agree("spmv-arrowhead");
}

#[test]
fn mandelbrot_engines_agree() {
    assert_engines_agree("mandelbrot");
}

#[test]
fn kmeans_engines_agree() {
    assert_engines_agree("kmeans");
}

#[test]
fn srad_engines_agree() {
    assert_engines_agree("srad");
}

#[test]
fn floyd_warshall_large_engines_agree() {
    assert_engines_agree("floyd-warshall-large");
}

#[test]
fn mergesort_engines_agree() {
    assert_engines_agree("mergesort-uniform");
}

#[test]
fn mergesort_exponential_engines_agree() {
    assert_engines_agree("mergesort-exp");
}

#[test]
fn knapsack_engines_agree() {
    assert_engines_agree("knapsack");
}

/// Non-default policies must keep the engines in lockstep too: every
/// promote/steal decision comes from the shared kernel (`tpal-sched`),
/// so the matrix below — promotion policies that change *which* points
/// promote crossed with victim policies that change the RNG draw
/// pattern — would expose any engine-specific decision logic left
/// behind by the refactor.
#[test]
fn policy_matrix_engines_agree() {
    let policies = [
        "eager/uniform",
        "never/uniform",
        "adaptive:7000/uniform",
        "heartbeat/sequence",
        "heartbeat/locality",
        "eager/sequence",
        "adaptive:5000/locality",
    ];
    for name in ["plus-reduce-array", "mergesort-uniform"] {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        for pspec in policies {
            let policy = Policy::parse(pspec).expect("valid policy spec");
            for (label, base) in [
                ("linux-4", SimConfig::linux(4, 3_000)),
                ("nautilus-8", SimConfig::nautilus(8, 3_000)),
            ] {
                let mut config = base;
                config.policy = policy;
                let ctx = format!("{name} / {label} / {pspec}");
                assert_pair_agrees(&spec, Mode::Heartbeat, config, &ctx);
            }
        }
    }
}

/// The jittered local timer draws its re-arm offsets from the shared
/// RNG stream: both engines must consume the draws in the same order
/// (core index order per delivery cycle) to stay equivalent.
#[test]
fn jittered_timer_engines_agree() {
    for name in ["plus-reduce-array", "floyd-warshall-small"] {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        for seed in SEEDS {
            let mut config = SimConfig::nautilus(8, 3_000);
            config.interrupt = InterruptModel::JitteredTimer {
                jitter: 400,
                service_cost: 5,
            };
            config.seed = seed;
            let ctx = format!("{name} / jittered-8 / seed {seed:#x}");
            assert_pair_agrees(&spec, Mode::Heartbeat, config, &ctx);
        }
    }
}

/// The timelines must agree bucket-for-bucket too: the batching engine
/// records work as spans ([`Timeline::record_span`]) while the reference
/// records cycle by cycle, and the split across buckets must come out
/// the same.
#[test]
fn timelines_agree_bucket_for_bucket() {
    let spec = workload("plus-reduce-array")
        .expect("known workload")
        .sim_spec(Scale::Quick);
    let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
    let mut config = SimConfig::nautilus(4, 3_000);
    config.record_timeline = true;

    let mut new_engine = Sim::new(&lowered.program, config);
    let mut ref_engine = SimRef::new(&lowered.program, config);
    for (pname, data) in &spec.input.arrays {
        let b = new_engine.alloc_array(data);
        ref_engine.alloc_array(data);
        new_engine.set_reg(&lowered.param_reg(pname), b).unwrap();
        ref_engine.set_reg(&lowered.param_reg(pname), b).unwrap();
    }
    for (pname, v) in &spec.input.ints {
        new_engine.set_reg(&lowered.param_reg(pname), *v).unwrap();
        ref_engine.set_reg(&lowered.param_reg(pname), *v).unwrap();
    }
    let new_out = new_engine.run().unwrap();
    let ref_out = ref_engine.run().unwrap();

    let new_tl = new_out.timeline.expect("timeline recorded");
    let ref_tl = ref_out.timeline.expect("timeline recorded");
    assert_eq!(new_tl.cores(), ref_tl.cores());
    assert_eq!(new_tl.bucket_cycles(), ref_tl.bucket_cycles());
    for c in 0..new_tl.cores() {
        assert_eq!(new_tl.core(c), ref_tl.core(c), "core {c} buckets");
    }
}
