//! Property test for the SplitMix64 skip-ahead the event-driven engine
//! leans on: fast-forwarding a parked core's failed-steal retry chain
//! replaces `k` individual draws with one O(1) [`SplitMix64::skip`], so
//! skip must land the stream *exactly* where sequential drawing would.
//!
//! Exercised through the `tpal-sim` re-export — the path the engine
//! itself uses — so a future re-wiring of the RNG source breaks here.

use proptest::prelude::*;
use tpal_sim::SplitMix64;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `skip(k)` followed by one draw equals `k + 1` sequential draws.
    #[test]
    fn skip_matches_sequential_draws(seed in any::<u64>(), k in 0u64..10_000) {
        let mut seq = SplitMix64::new(seed);
        let mut last = 0;
        for _ in 0..=k {
            last = seq.next_u64();
        }

        let mut skipped = SplitMix64::new(seed);
        skipped.skip(k);
        prop_assert_eq!(skipped.next_u64(), last);
    }

    /// Skips compose: `skip(a); skip(b)` equals `skip(a + b)`.
    #[test]
    fn skips_compose(seed in any::<u64>(), a in 0u64..100_000, b in 0u64..100_000) {
        let mut split = SplitMix64::new(seed);
        split.skip(a);
        split.skip(b);
        let mut joined = SplitMix64::new(seed);
        joined.skip(a + b);
        prop_assert_eq!(split.next_u64(), joined.next_u64());
    }
}
