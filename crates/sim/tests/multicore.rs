//! Integration tests of the multicore simulator: correctness across
//! configurations, scaling behaviour, interrupt models, cost-model
//! invariants, and determinism.

use tpal_core::cost::{brent_upper_bound, lower_bound};
use tpal_core::machine::{Machine, MachineConfig, MachineError};
use tpal_core::programs::{fib, prod};
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal_ir::lower::{lower, Mode};
use tpal_sim::{InterruptModel, Sim, SimConfig, SimOutcome};

fn run_prod(config: SimConfig, a: i64, b: i64) -> SimOutcome {
    let p = prod();
    let mut sim = Sim::new(&p, config);
    sim.set_reg("a", a).unwrap();
    sim.set_reg("b", b).unwrap();
    sim.run().unwrap()
}

#[test]
fn prod_correct_on_any_core_count() {
    for cores in [1, 2, 3, 8, 15] {
        let mut c = SimConfig::nautilus(cores, 3000);
        c.seed = 7;
        let out = run_prod(c, 100_000, 3);
        assert_eq!(out.read_reg("c"), Some(300_000), "cores={cores}");
    }
}

#[test]
fn prod_scales_with_cores() {
    let t1 = run_prod(SimConfig::nautilus(1, 3000), 400_000, 1).time;
    let t4 = run_prod(SimConfig::nautilus(4, 3000), 400_000, 1).time;
    let t8 = run_prod(SimConfig::nautilus(8, 3000), 400_000, 1).time;
    assert!(
        (t1 as f64) / (t4 as f64) > 2.5,
        "4 cores should give >2.5x ({t1} vs {t4})"
    );
    assert!(
        (t1 as f64) / (t8 as f64) > 4.0,
        "8 cores should give >4x ({t1} vs {t8})"
    );
}

#[test]
fn sim_agrees_with_reference_machine() {
    let p = fib();
    let mut m = Machine::new(&p, MachineConfig::serial());
    m.set_reg("n", 16).unwrap();
    let expected = m.run().unwrap().read_reg("f").unwrap();

    let mut sim = Sim::new(&p, SimConfig::nautilus(8, 2000));
    sim.set_reg("n", 16).unwrap();
    let out = sim.run().unwrap();
    assert_eq!(out.read_reg("f"), Some(expected));
    assert!(
        out.stats.forks > 0,
        "fib(16) should promote: {:?}",
        out.stats
    );
}

#[test]
fn deterministic_per_seed() {
    let mk = |seed| {
        let mut c = SimConfig::linux(6, 1500);
        c.seed = seed;
        run_prod(c, 150_000, 2)
    };
    let a = mk(11);
    let b = mk(11);
    let c = mk(12);
    assert_eq!(a.time, b.time);
    assert_eq!(a.stats, b.stats);
    // A different seed still computes the right answer (and usually a
    // different schedule).
    assert_eq!(c.read_reg("c"), Some(300_000));
}

#[test]
fn disabled_interrupts_never_promote() {
    let mut c = SimConfig::nautilus(8, 3000);
    c.interrupt = InterruptModel::Disabled;
    let out = run_prod(c, 50_000, 2);
    assert_eq!(out.read_reg("c"), Some(100_000));
    assert_eq!(out.stats.forks, 0);
    assert_eq!(out.stats.promotions, 0);
    assert_eq!(out.stats.heartbeats_delivered, 0);
}

#[test]
fn ping_thread_misses_aggressive_targets() {
    // A 15-core round at ~110+ cycles per signal takes ≥ 1650 cycles; at
    // ♥ = 600 the ping thread cannot keep up (Figure 10's 20µs case),
    // while the per-core timer always hits its target.
    let a = 300_000;
    let linux = run_prod(SimConfig::linux(15, 600), a, 1);
    let nautilus = run_prod(SimConfig::nautilus(15, 600), a, 1);
    assert!(
        linux.heartbeat_rate_achieved() < 0.5,
        "ping thread should miss the 600-cycle target: {}",
        linux.heartbeat_rate_achieved()
    );
    assert!(
        nautilus.heartbeat_rate_achieved() > 0.95,
        "per-core timer should hit its target: {}",
        nautilus.heartbeat_rate_achieved()
    );
}

#[test]
fn ping_thread_meets_leisurely_targets() {
    let out = run_prod(SimConfig::linux(4, 3000), 300_000, 1);
    assert!(
        out.heartbeat_rate_achieved() > 0.85,
        "4-core round fits in ♥=3000: {}",
        out.heartbeat_rate_achieved()
    );
}

#[test]
fn makespan_within_cost_model_bounds() {
    // Time must exceed the trivial lower bound and stay within a
    // generous Brent-style envelope (overheads included).
    for cores in [2, 4, 8] {
        let out = run_prod(SimConfig::nautilus(cores, 3000), 200_000, 1);
        let work = out.stats.work_cycles + out.stats.overhead_cycles;
        let span = 1; // unknown; use 1 for the lower bound
        assert!(out.time >= lower_bound(out.stats.work_cycles, span, cores as u64));
        assert!(
            out.time <= brent_upper_bound(work, work / 10, cores as u64),
            "time {} far outside Brent envelope (work {})",
            out.time,
            work
        );
    }
}

#[test]
fn cycle_accounting_identity() {
    // Every core-cycle is classified as work, overhead, or idle; the
    // classification must cover the whole cores × makespan area up to a
    // small residue (cores finishing mid-beat after the halt).
    for cores in [1usize, 4, 9] {
        let out = run_prod(SimConfig::nautilus(cores, 2000), 150_000, 2);
        let area = out.time as i64 * cores as i64;
        let counted =
            (out.stats.work_cycles + out.stats.overhead_cycles + out.stats.idle_cycles) as i64;
        let residue = (area - counted).abs() as f64 / area as f64;
        assert!(
            residue < 0.10,
            "cores={cores}: area {area}, counted {counted} ({residue:.2} residue)"
        );
    }
}

#[test]
fn smaller_heartbeat_creates_more_tasks() {
    let fast = run_prod(SimConfig::nautilus(4, 1000), 300_000, 1);
    let slow = run_prod(SimConfig::nautilus(4, 10_000), 300_000, 1);
    assert!(
        fast.stats.forks > slow.stats.forks,
        "♥=1000 should fork more than ♥=10000 ({} vs {})",
        fast.stats.forks,
        slow.stats.forks
    );
}

#[test]
fn deadlock_detected_for_non_halting_program() {
    use tpal_core::isa::{Instr, Operand};
    use tpal_core::program::ProgramBuilder;
    // A program whose only task jumps into a join with no fork: the task
    // faults; wrap a benign variant: task that just ends by stashing
    // forever is impossible, so test the all-idle case with a program
    // that only halts from a task that never gets created. Simplest:
    // entry block that is a self-jump would spin, so instead use a
    // program whose entry forks a child that joins, and the parent joins
    // too — leaving the merged task to *continue* to a block that joins
    // again without a fork: that is a machine error, which run() reports.
    let mut b = ProgramBuilder::new();
    let r = b.reg("jr");
    let exitl = b.label("exitb");
    let comb = b.label("comb");
    b.block(
        "main",
        vec![
            Instr::JrAlloc {
                dst: r,
                cont: Operand::Label(exitl),
            },
            Instr::Join { jr: r },
        ],
    );
    b.annotated_block(
        "exitb",
        tpal_core::isa::Annotation::JoinTarget {
            policy: tpal_core::isa::JoinPolicy::AssocComm,
            merge: tpal_core::isa::RegMap::new(),
            comb,
        },
        vec![Instr::Halt],
    );
    b.block("comb", vec![Instr::Join { jr: r }]);
    let p = b.build().unwrap();
    let mut sim = Sim::new(&p, SimConfig::nautilus(2, 1000));
    // Joining without fork is a protocol error.
    assert!(matches!(sim.run(), Err(MachineError::JoinWithoutFork)));
}

#[test]
fn heartbeat_vs_eager_task_counts_from_ir() {
    // The same IR loop, lowered both ways: eager creates tasks up front
    // regardless of need; heartbeat creates them at the beat rate.
    let f = Function::new("main", ["n"])
        .stmt(Stmt::assign("s", Expr::int(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("i", Expr::int(0), Expr::var("n"))
                .body(vec![Stmt::assign("s", Expr::var("s").add(Expr::var("i")))])
                .reducer(Reducer::new("s", tpal_core::isa::BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(Expr::var("s")));
    let ir = IrProgram::new("main").function(f);
    let n: i64 = 60_000;
    let expected = n * (n - 1) / 2;

    let hb = lower(&ir, Mode::Heartbeat).unwrap();
    let eager = lower(&ir, Mode::Eager { workers: 15 }).unwrap();

    let mut s1 = Sim::new(&hb.program, SimConfig::nautilus(15, 3000));
    s1.set_reg(&hb.param_reg("n"), n).unwrap();
    let o1 = s1.run().unwrap();
    assert_eq!(o1.read_reg(&hb.result_reg), Some(expected));

    let mut s2 = Sim::new(&eager.program, SimConfig::nautilus(15, 3000));
    s2.set_reg(&eager.param_reg("n"), n).unwrap();
    let o2 = s2.run().unwrap();
    assert_eq!(o2.read_reg(&eager.result_reg), Some(expected));

    // Eager's 8P heuristic makes ~2×8×15 tasks here; heartbeat makes a
    // number proportional to work/♥.
    assert!(o2.stats.forks >= 100, "eager forks: {}", o2.stats.forks);
    assert!(o1.stats.forks > 0);
    // Both scale: speedups over their own single-core runs.
    assert!(o1.speedup_base() > 4.0, "hb speedup {}", o1.speedup_base());
    assert!(
        o2.speedup_base() > 4.0,
        "eager speedup {}",
        o2.speedup_base()
    );
}

#[test]
fn timeline_records_the_run() {
    let mut cfg = SimConfig::nautilus(4, 2000);
    cfg.record_timeline = true;
    let out = run_prod(cfg, 200_000, 1);
    let tl = out.timeline.as_ref().expect("timeline recorded");
    assert_eq!(tl.cores(), 4);
    // The timeline's cycles reconcile with the stats.
    let (mut work, mut overhead, mut idle) = (0u64, 0u64, 0u64);
    for c in 0..tl.cores() {
        for b in tl.core(c) {
            work += b.work;
            overhead += b.overhead;
            idle += b.idle;
        }
    }
    assert_eq!(work, out.stats.work_cycles);
    assert_eq!(overhead, out.stats.overhead_cycles);
    assert_eq!(idle, out.stats.idle_cycles);
    // The rendering covers every core and shows busy columns.
    let s = tl.render(60);
    assert_eq!(s.lines().count(), 4);
    assert!(s.contains('#') || s.contains('+'), "{s}");
    // Ramp-up: utilization at the start of the run is below its peak.
    let u = tl.utilization_series(20);
    let peak = u.iter().cloned().fold(0.0f64, f64::max);
    assert!(u[0] <= peak);
}
