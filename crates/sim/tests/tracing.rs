//! End-to-end tests of the structured trace subsystem on the simulator:
//! Chrome-schema validity of rendered traces, byte-level determinism,
//! consistency of the trace-derived metrics with the engine's own
//! counters, the TASKPROF-style work/span fold against the machine's
//! fork/join-threaded accounting, and timeline reconstruction.

use tpal_ir::lower::{lower, Mode};
use tpal_sim::{Sim, SimConfig, SimOutcome};
use tpal_trace::{chrome, MetricsReport, WorkSpanProfile};
use tpal_workloads::{workload, Scale};

/// Workloads the profiler cross-check runs on (the ISSUE's "≥ 4
/// workloads"): two loop-based, one recursive, one stencil-ish.
const WORKLOADS: [&str; 4] = [
    "plus-reduce-array",
    "floyd-warshall-small",
    "mergesort-uniform",
    "mandelbrot",
];

fn run_workload(name: &str, config: SimConfig) -> SimOutcome {
    let spec = workload(name)
        .expect("known workload")
        .sim_spec(Scale::Quick);
    let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap_or_else(|e| panic!("lowering: {e}"));
    let mut sim = Sim::new(&lowered.program, config);
    for (pname, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(pname), base).unwrap();
    }
    for (pname, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(pname), *v).unwrap();
    }
    let out = sim.run().unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(
        out.read_reg(&lowered.result_reg),
        Some(spec.expected),
        "{name} checksum"
    );
    out
}

fn traced(cores: usize) -> SimConfig {
    let mut c = SimConfig::nautilus(cores, 3_000);
    c.record_trace = true;
    c
}

/// The ISSUE's acceptance scenario: a 4-core mergesort run yields a
/// Chrome trace with one named track per core that passes validation.
#[test]
fn mergesort_chrome_trace_has_per_core_tracks() {
    let out = run_workload("mergesort-uniform", traced(4));
    let trace = out.trace.expect("record_trace was set");
    assert_eq!(trace.tracks.len(), 4);
    for (i, track) in trace.tracks.iter().enumerate() {
        assert_eq!(track.name, format!("core {i}"));
        assert!(!track.events.is_empty(), "core {i} recorded nothing");
    }
    let json = chrome::chrome_json(&trace);
    let n = chrome::validate(&json).expect("schema-valid Chrome trace");
    assert!(n > trace.tracks.len(), "more than just metadata records");
}

/// Every figure quantity computed from the trace must agree with the
/// engine's own counters — same stream, no drift.
#[test]
fn trace_metrics_agree_with_sim_stats() {
    for name in ["plus-reduce-array", "mergesort-uniform"] {
        let out = run_workload(name, traced(4));
        let trace = out.trace.as_ref().expect("trace recorded");
        let r = MetricsReport::from_trace(trace);
        assert_eq!(
            r.heartbeats_delivered, out.stats.heartbeats_delivered,
            "{name}"
        );
        assert_eq!(r.tasks_created, out.stats.forks, "{name}");
        assert_eq!(r.promotions, out.stats.promotions, "{name}");
        assert_eq!(r.heartbeats_serviced, out.stats.promotions, "{name}");
        assert_eq!(r.steals, out.stats.steals, "{name}");
        assert_eq!(r.join_merges, out.stats.merges, "{name}");
        assert_eq!(
            r.join_stashes + r.join_merges + r.join_continues,
            out.stats.joins,
            "{name}: every join stashes, merges, or continues"
        );
        let t = r.totals();
        assert_eq!(t.work, out.stats.work_cycles, "{name}");
        assert_eq!(t.overhead, out.stats.overhead_cycles, "{name}");
        assert_eq!(t.idle, out.stats.idle_cycles, "{name}");
        // Charged spans can run up to (or past) the halt cycle, so the
        // trace horizon is at least the makespan.
        assert!(r.makespan >= out.time, "{name}");
    }
}

/// The TASKPROF-style DAG fold over trace events must reproduce the
/// machine's own fork/join-threaded work/span totals exactly, and work
/// must equal executed instruction cycles.
#[test]
fn work_span_profile_matches_machine_accounting() {
    for name in WORKLOADS {
        let out = run_workload(name, traced(4));
        let p = WorkSpanProfile::from_trace(out.trace.as_ref().unwrap());
        assert!(p.complete, "{name}: halt recorded");
        assert_eq!(p.work, out.work, "{name}: work");
        assert_eq!(p.span, out.span, "{name}: span");
        assert_eq!(p.work, out.stats.work_cycles, "{name}: work = instructions");
        assert_eq!(p.tasks, out.stats.forks + 1, "{name}: tasks");
        assert!(p.span <= p.work, "{name}");
        assert!(
            p.parallelism() > 1.0,
            "{name}: promoted runs must expose parallelism, got {}",
            p.parallelism()
        );
    }
}

/// Two runs with identical config and seed must serialize to the very
/// same bytes — the determinism the differential suites (and CI's trace
/// artifact diffing) rely on.
#[test]
fn chrome_trace_bytes_deterministic_per_seed() {
    let render = || {
        let out = run_workload("mergesort-uniform", traced(4));
        chrome::chrome_json(out.trace.as_ref().unwrap())
    };
    let a = render();
    let b = render();
    assert!(a == b, "same seed, different trace bytes");
}

/// A timeline rebuilt from the trace must equal the one recorded live —
/// the trace subsumes the older bucketed instrumentation.
#[test]
fn timeline_from_trace_matches_live_recording() {
    let mut config = traced(4);
    config.record_timeline = true;
    let out = run_workload("plus-reduce-array", config);
    let live = out.timeline.as_ref().expect("timeline recorded");
    let rebuilt = tpal_sim::Timeline::from_trace(
        out.trace.as_ref().expect("trace recorded"),
        live.bucket_cycles(),
    );
    assert_eq!(&rebuilt, live);
}

/// Tracing must not perturb the simulation: identical makespan, stats,
/// and registers with recording on and off (the zero-cost-when-off
/// guarantee, semantically).
#[test]
fn tracing_does_not_perturb_the_run() {
    let plain = run_workload("mergesort-uniform", SimConfig::nautilus(4, 3_000));
    let traced = run_workload("mergesort-uniform", traced(4));
    assert!(plain.trace.is_none(), "tracing defaults to off");
    assert_eq!(plain.time, traced.time);
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(plain.final_regs(), traced.final_regs());
    assert_eq!((plain.work, plain.span), (traced.work, traced.span));
}
