//! The abstract syntax of the task-parallel IR.
//!
//! Programs are sets of [`Function`]s over 64-bit integers and a shared
//! word-addressed heap. Parallelism appears as [`Stmt::ParFor`] (a
//! parallel loop with optional reducers), [`Stmt::ParForNested`] (a
//! two-level parallel loop nest, promoted outermost-first), and
//! [`Stmt::Par2`] (binary fork-join over function calls, the
//! `cilk_spawn`/`cilk_sync` shape).
//!
//! Restrictions (enforced by the lowering pass):
//!
//! * `ParFor` bodies contain serial statements only (serial calls are
//!   allowed; nested parallelism goes through `ParForNested` or `Par2` in
//!   a callee).
//! * A `ParFor` body may assign only loop-local variables and declared
//!   reducers; captured variables are read-only (their register copies
//!   are task-private, so writes would be lost — the same rule Cilk
//!   imposes morally on strand-local state).

// The `Expr` combinators deliberately mirror the operator names users
// expect from a small expression builder (`add`, `mul`, `not`, …); they
// take `self` by value and return `Expr`, so confusion with the std ops
// traits is harmless and the names are clearer than alternatives.
#![allow(clippy::should_implement_trait)]

use tpal_core::isa::BinOp;

/// A variable name, scoped to its function.
pub type Var = String;

/// An integer expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A variable read.
    Var(Var),
    /// A binary operation (TPAL truth encoding: comparisons give 0 for
    /// true).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// A heap load `base[idx]`.
    Load {
        /// Base-address expression.
        base: Box<Expr>,
        /// Word-offset expression.
        idx: Box<Expr>,
    },
}

impl Expr {
    /// An integer literal.
    pub fn int(n: i64) -> Expr {
        Expr::Int(n)
    }

    /// A variable read.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// A heap load `self[idx]`.
    pub fn load(self, idx: Expr) -> Expr {
        Expr::Load {
            base: Box::new(self),
            idx: Box::new(idx),
        }
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }

    /// `self / rhs` (errors at runtime on division by zero).
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mod, self, rhs)
    }

    /// `self >> rhs` (arithmetic).
    pub fn shr(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Shr, self, rhs)
    }

    /// `self << rhs`.
    pub fn shl(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Shl, self, rhs)
    }

    /// `min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, rhs)
    }

    /// `max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, rhs)
    }

    /// `self < rhs` (0 = true).
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs` (0 = true).
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// `self > rhs` (0 = true).
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// `self >= rhs` (0 = true).
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }

    /// `self == rhs` (0 = true).
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::EqOp, self, rhs)
    }

    /// `self != rhs` (0 = true).
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// Logical conjunction of two *truth values* (each exactly 0 or 1):
    /// true iff both true. Under the 0-is-true encoding this is bitwise
    /// or.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// Logical negation of a truth value (exactly 0 or 1).
    pub fn not(self) -> Expr {
        Expr::bin(BinOp::Xor, self, Expr::int(1))
    }
}

/// A reducer declaration on a parallel loop: promoted child tasks start
/// the variable at `identity` and results are combined pairwise with
/// `op` at join points (the Cilk `reducer_opadd` pattern of §3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reducer {
    /// The accumulator variable.
    pub var: Var,
    /// The (associative, commutative) combining operation.
    pub op: BinOp,
    /// The identity element of `op`.
    pub identity: i64,
}

impl Reducer {
    /// Declares a reducer.
    pub fn new(var: impl Into<String>, op: BinOp, identity: i64) -> Reducer {
        Reducer {
            var: var.into(),
            op,
            identity,
        }
    }
}

/// A parallel loop `parfor var in [from, to)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParFor {
    /// The loop variable.
    pub var: Var,
    /// Inclusive lower bound.
    pub from: Expr,
    /// Exclusive upper bound.
    pub to: Expr,
    /// Serial loop body.
    pub body: Vec<Stmt>,
    /// Reducer declarations.
    pub reducers: Vec<Reducer>,
}

impl ParFor {
    /// A parallel loop over `[from, to)` with an empty body.
    pub fn new(var: impl Into<String>, from: Expr, to: Expr) -> ParFor {
        ParFor {
            var: var.into(),
            from,
            to,
            body: Vec::new(),
            reducers: Vec::new(),
        }
    }

    /// Sets the body.
    pub fn body(mut self, body: Vec<Stmt>) -> ParFor {
        self.body = body;
        self
    }

    /// Adds a reducer.
    pub fn reducer(mut self, r: Reducer) -> ParFor {
        self.reducers.push(r);
        self
    }
}

/// A two-level parallel loop nest, scheduled with the paper's
/// outer-loop-first promotion policy (Appendix B.1): heartbeat handlers
/// promote remaining *outer* iterations when the interrupted task owns
/// them, and split the *inner* loop otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParForNested {
    /// Outer loop variable.
    pub outer_var: Var,
    /// Outer inclusive lower bound.
    pub outer_from: Expr,
    /// Outer exclusive upper bound.
    pub outer_to: Expr,
    /// Serial prologue of each outer iteration (typically computes the
    /// inner bounds).
    pub pre: Vec<Stmt>,
    /// Inner loop variable.
    pub inner_var: Var,
    /// Inner inclusive lower bound (may reference `pre` results).
    pub inner_from: Expr,
    /// Inner exclusive upper bound.
    pub inner_to: Expr,
    /// Serial inner body.
    pub inner_body: Vec<Stmt>,
    /// Reducers of the inner loop (combined per outer iteration).
    pub inner_reducers: Vec<Reducer>,
    /// Serial epilogue of each outer iteration (sees the combined inner
    /// reducers).
    pub post: Vec<Stmt>,
    /// Reducers of the outer loop.
    pub outer_reducers: Vec<Reducer>,
}

/// A call specification used by [`Stmt::Par2`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSpec {
    /// Callee name.
    pub func: String,
    /// Argument expressions.
    pub args: Vec<Expr>,
    /// Variable receiving the return value.
    pub ret: Var,
}

impl CallSpec {
    /// A call `ret := func(args…)`.
    pub fn new(func: impl Into<String>, args: Vec<Expr>, ret: impl Into<String>) -> CallSpec {
        CallSpec {
            func: func.into(),
            args,
            ret: ret.into(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `var := expr`.
    Assign(Var, Expr),
    /// `base[idx] := val` (heap store).
    Store {
        /// Base-address expression.
        base: Expr,
        /// Word-offset expression.
        idx: Expr,
        /// Stored value.
        val: Expr,
    },
    /// `var := halloc(size)` — allocate zeroed heap words.
    Alloc {
        /// Variable receiving the base address.
        var: Var,
        /// Number of words.
        size: Expr,
    },
    /// Two-armed conditional; the branch is taken when `cond` is zero
    /// (true).
    If {
        /// Condition (0 = true).
        cond: Expr,
        /// Taken when `cond` is zero.
        then_: Vec<Stmt>,
        /// Taken otherwise.
        else_: Vec<Stmt>,
    },
    /// Serial while loop; continues while `cond` is zero (true).
    While {
        /// Condition (0 = true).
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Serial counted loop over `[from, to)`.
    For {
        /// Loop variable.
        var: Var,
        /// Inclusive lower bound.
        from: Expr,
        /// Exclusive upper bound (evaluated once).
        to: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// A serial function call `ret := func(args…)`.
    Call {
        /// Callee name.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Variable receiving the return value (the value is discarded if
        /// `None`).
        ret: Option<Var>,
    },
    /// Binary fork-join: semantically `left` and `right` may run in
    /// parallel; execution continues after both complete. In heartbeat
    /// mode the left call runs immediately and the right is *latent*,
    /// advertised by a promotion-ready mark (Appendix B.2).
    Par2 {
        /// The call executed first (serially, unless its sibling is
        /// promoted).
        left: CallSpec,
        /// The latent call.
        right: CallSpec,
    },
    /// A parallel loop.
    ParFor(ParFor),
    /// A two-level parallel loop nest.
    ParForNested(Box<ParForNested>),
    /// Return from the current function with a value.
    Return(Expr),
}

impl Stmt {
    /// `var := expr`.
    pub fn assign(var: impl Into<String>, e: Expr) -> Stmt {
        Stmt::Assign(var.into(), e)
    }

    /// `base[idx] := val`.
    pub fn store(base: Expr, idx: Expr, val: Expr) -> Stmt {
        Stmt::Store { base, idx, val }
    }

    /// One-armed conditional.
    pub fn if_(cond: Expr, then_: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_,
            else_: Vec::new(),
        }
    }

    /// Two-armed conditional.
    pub fn if_else(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then_, else_ }
    }

    /// Serial counted loop.
    pub fn for_(var: impl Into<String>, from: Expr, to: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var: var.into(),
            from,
            to,
            body,
        }
    }

    /// Serial call.
    pub fn call(func: impl Into<String>, args: Vec<Expr>, ret: Option<&str>) -> Stmt {
        Stmt::Call {
            func: func.into(),
            args,
            ret: ret.map(|s| s.to_owned()),
        }
    }
}

/// A function: named parameters and a statement body. Every function
/// returns a value ([`Stmt::Return`]); falling off the end returns 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// The function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<Var>,
    /// The body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Creates a function with the given parameters and an empty body.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        params: impl IntoIterator<Item = S>,
    ) -> Function {
        Function {
            name: name.into(),
            params: params.into_iter().map(Into::into).collect(),
            body: Vec::new(),
        }
    }

    /// Appends a statement.
    pub fn stmt(mut self, s: Stmt) -> Function {
        self.body.push(s);
        self
    }

    /// Appends several statements.
    pub fn stmts(mut self, s: impl IntoIterator<Item = Stmt>) -> Function {
        self.body.extend(s);
        self
    }
}

/// A whole IR program: functions plus the name of the entry function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrProgram {
    /// The functions.
    pub functions: Vec<Function>,
    /// Name of the entry function (its parameters are the program
    /// inputs).
    pub entry: String,
}

impl IrProgram {
    /// Creates a program with the given entry-function name and no
    /// functions yet.
    pub fn new(entry: impl Into<String>) -> IrProgram {
        IrProgram {
            functions: Vec::new(),
            entry: entry.into(),
        }
    }

    /// Adds a function.
    pub fn function(mut self, f: Function) -> IrProgram {
        self.functions.push(f);
        self
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders_compose() {
        let e = Expr::var("x").add(Expr::int(1)).mul(Expr::var("y"));
        match e {
            Expr::Bin(BinOp::Mul, lhs, _) => {
                assert!(matches!(*lhs, Expr::Bin(BinOp::Add, _, _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn logical_and_is_bitwise_or_under_zero_truth() {
        // (0 and 0) = 0 (true); (0 and 1) = 1 (false).
        match Expr::int(0).and(Expr::int(1)) {
            Expr::Bin(BinOp::Or, _, _) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn program_lookup() {
        let p = IrProgram::new("main").function(Function::new("main", ["x"]));
        assert!(p.get("main").is_some());
        assert!(p.get("nope").is_none());
        assert_eq!(p.get("main").unwrap().params, vec!["x".to_owned()]);
    }

    #[test]
    fn function_builder_accumulates() {
        let f = Function::new("f", ["a"])
            .stmt(Stmt::assign("x", Expr::int(1)))
            .stmts([Stmt::Return(Expr::var("x"))]);
        assert_eq!(f.body.len(), 2);
    }
}
