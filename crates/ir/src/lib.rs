//! A task-parallel source IR and its lowering to TPAL.
//!
//! This crate plays the role of the compiler pipeline sketched in §3.1 of
//! the paper: a high-level, Cilk-Plus-shaped program — serial statements
//! plus `ParFor` parallel loops (optionally nested), binary fork-join
//! `Par2`, and reducers — is *lowered* to TPAL assembly using the paper's
//! code-versioning technique. Three lowering modes produce three
//! semantically equivalent executables from one source:
//!
//! * [`Mode::Serial`] — parallel constructs erased; the plain serial
//!   program (the paper's `Serial` baseline).
//! * [`Mode::Heartbeat`] — serial-by-default blocks, promotion-ready
//!   program points, heartbeat handler blocks, and parallel blocks, after
//!   Figures 2 (loops) and 22/23 (recursion, with stack frames carrying
//!   promotion-ready marks). Latent parallelism is manifested only when a
//!   heartbeat fires (TPAL proper).
//! * [`Mode::Eager`] — Cilk-style *initial decomposition*: every spawn
//!   forks a task immediately, and parallel loops are eagerly divided
//!   into `8P` chunks by binary splitting (the `cilk_for` grain
//!   heuristic the paper compares against).
//!
//! Heartbeat loops come in the two block styles of the paper's §D.5:
//! [`Mode::Heartbeat`] emits the *reduced* style (one loop block plus a
//! sentinel join record) and [`Mode::HeartbeatExpanded`] the *expanded*
//! style (separate serial and parallel loop blocks, a join-free serial
//! path, duplicated bodies); the `ablation_block_style` bench measures
//! the trade.
//!
//! The lowered [`tpal_core::Program`]s run on the reference machine or on
//! the `tpal-sim` multicore simulator; the benchmark suite in
//! `tpal-workloads` is written against this IR.
//!
//! # Truth encoding
//!
//! The IR inherits TPAL's truth encoding: comparisons evaluate to **0 for
//! true**, and [`Stmt::If`]/[`Stmt::While`] take the branch when the
//! condition is zero. Use the [`ast::Expr`] helper constructors
//! ([`ast::Expr::lt`], [`ast::Expr::and`], …), which handle the encoding.
//!
//! # Example
//!
//! ```
//! use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
//! use tpal_ir::lower::{lower, Mode};
//! use tpal_core::machine::{Machine, MachineConfig};
//! use tpal_core::isa::BinOp;
//!
//! // sum = Σ a[i] over a 100-element array, as a parallel loop.
//! let f = Function::new("sum_array", ["a", "n"])
//!     .stmt(Stmt::assign("s", Expr::int(0)))
//!     .stmt(Stmt::ParFor(
//!         ParFor::new("i", Expr::int(0), Expr::var("n"))
//!             .body(vec![Stmt::assign(
//!                 "s",
//!                 Expr::var("s").add(Expr::var("a").load(Expr::var("i"))),
//!             )])
//!             .reducer(Reducer::new("s", BinOp::Add, 0)),
//!     ))
//!     .stmt(Stmt::Return(Expr::var("s")));
//! let ir = IrProgram::new(&f.name).function(f);
//! let lowered = lower(&ir, Mode::Heartbeat).unwrap();
//!
//! let mut m = Machine::new(&lowered.program, MachineConfig::default().with_heartbeat(50));
//! let data: Vec<i64> = (1..=100).collect();
//! let base = m.alloc_array(&data);
//! m.set_reg(&lowered.param_reg("a"), base).unwrap();
//! m.set_reg(&lowered.param_reg("n"), 100).unwrap();
//! let out = m.run().unwrap();
//! assert_eq!(out.read_reg(&lowered.result_reg), Some(5050));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parse;

pub use ast::{CallSpec, Expr, Function, IrProgram, ParFor, ParForNested, Reducer, Stmt};
pub use lower::{lower, LowerError, Lowered, Mode};
pub use parse::{parse_ir, FrontendError};
