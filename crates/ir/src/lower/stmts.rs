//! Statement lowering: serial control flow and the calling convention.

use tpal_core::isa::{BinOp, Instr, Operand};

use crate::ast::Stmt;
use crate::lower::context::{Cx, RV, SP};
use crate::lower::{LowerError, Mode};

impl Cx<'_> {
    /// Lowers a statement list into the open block (which remains open,
    /// possibly as a fresh continuation block).
    pub fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for s in stmts {
            self.lower_stmt(s)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), LowerError> {
        self.reset_temps();
        match s {
            Stmt::Assign(v, e) => {
                let dst = self.vreg(v);
                self.eval_into(e, dst);
            }
            Stmt::Store { base, idx, val } => {
                let b = self.eval_reg(base);
                let i = self.eval_operand(idx);
                let v = self.eval_operand(val);
                self.emit(Instr::HStore {
                    base: b,
                    offset: i,
                    src: v,
                });
                self.reset_temps();
            }
            Stmt::Alloc { var, size } => {
                let sz = self.eval_operand(size);
                let dst = self.vreg(var);
                self.emit(Instr::HAlloc { dst, size: sz });
                self.reset_temps();
            }
            Stmt::If { cond, then_, else_ } => {
                let t = self.eval_reg(cond);
                let then_l = self.fresh_label("then");
                let else_l = self.fresh_label("else");
                let end_l = self.fresh_label("endif");
                self.if_jump(t, &then_l); // zero (true) takes the branch
                self.finish_jump(&else_l);

                self.start(&then_l);
                self.lower_stmts(then_)?;
                if self.in_block() {
                    self.finish_jump(&end_l);
                }
                self.start(&else_l);
                self.lower_stmts(else_)?;
                if self.in_block() {
                    self.finish_jump(&end_l);
                }
                self.start(&end_l);
            }
            Stmt::While { cond, body } => {
                let head = self.fresh_label("while");
                let body_l = self.fresh_label("do");
                let end = self.fresh_label("endwhile");
                self.finish_jump(&head);

                self.start(&head);
                let t = self.eval_reg(cond);
                self.if_jump(t, &body_l);
                self.finish_jump(&end);

                self.start(&body_l);
                self.lower_stmts(body)?;
                if self.in_block() {
                    self.finish_jump(&head);
                }
                self.start(&end);
            }
            Stmt::For {
                var,
                from,
                to,
                body,
            } => {
                let hi = format!("%for{}_hi", self.forc);
                self.forc += 1;
                self.lower_serial_for(var, from, to, body, &hi)?;
            }
            Stmt::Call { func, args, ret } => {
                self.lower_call(func, args, ret.as_deref())?;
            }
            Stmt::Return(e) => {
                let rv = self.greg(RV);
                self.eval_into(e, rv);
                self.require_fret();
                self.finish_jump("__fret");
                // Anything after a return is dead; keep emitting into an
                // unreachable block so the rest of the list stays valid.
                let dead = self.fresh_label("dead");
                self.start(&dead);
            }
            Stmt::Par2 { left, right } => {
                let site = self.site;
                self.site += 1;
                match self.mode {
                    Mode::Serial => {
                        self.lower_call(&left.func, &left.args, Some(&left.ret))?;
                        self.lower_call(&right.func, &right.args, Some(&right.ret))?;
                    }
                    Mode::Heartbeat | Mode::HeartbeatExpanded => {
                        self.lower_par2_heartbeat(site, left, right)?
                    }
                    Mode::Eager { .. } => self.lower_par2_eager(site, left, right)?,
                }
            }
            Stmt::ParFor(pf) => {
                let site = self.site;
                self.site += 1;
                ensure_serial(&pf.body, "a ParFor body")?;
                match self.mode {
                    Mode::Serial => {
                        let hi = format!("%s{site}_hi");
                        self.lower_serial_for(&pf.var, &pf.from, &pf.to, &pf.body, &hi)?
                    }
                    Mode::Heartbeat => self.lower_parfor_heartbeat(site, pf)?,
                    Mode::HeartbeatExpanded => self.lower_parfor_expanded(site, pf)?,
                    Mode::Eager { workers } => self.lower_parfor_eager(site, pf, workers)?,
                }
            }
            Stmt::ParForNested(n) => {
                let site = self.site;
                self.site += 2;
                ensure_serial(&n.pre, "a ParForNested prologue")?;
                ensure_serial(&n.inner_body, "a ParForNested inner body")?;
                ensure_serial(&n.post, "a ParForNested epilogue")?;
                match self.mode {
                    Mode::Serial => self.lower_nested_serial(n)?,
                    Mode::Heartbeat | Mode::HeartbeatExpanded => {
                        self.lower_nested_heartbeat(site, n)?
                    }
                    Mode::Eager { workers } => self.lower_nested_eager(site, n, workers)?,
                }
            }
        }
        Ok(())
    }

    /// A serial counted loop over `[from, to)`. `hi_var` names the
    /// function-saved scratch variable holding the bound (it must survive
    /// calls inside the body, including re-entrant ones).
    pub(crate) fn lower_serial_for(
        &mut self,
        var: &str,
        from: &crate::ast::Expr,
        to: &crate::ast::Expr,
        body: &[Stmt],
        hi_var: &str,
    ) -> Result<(), LowerError> {
        let head = self.fresh_label("for");
        let body_l = self.fresh_label("forbody");
        let end = self.fresh_label("endfor");
        let v = self.vreg(var);
        let hi = self.vreg(hi_var);
        self.eval_into(from, v);
        self.eval_into(to, hi);
        self.finish_jump(&head);

        self.start(&head);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, v, hi);
        self.if_jump(t, &body_l);
        self.finish_jump(&end);

        self.start(&body_l);
        self.lower_stmts(body)?;
        if self.in_block() {
            let v = self.vreg(var);
            self.op(v, BinOp::Add, v, 1);
            self.finish_jump(&head);
        }
        self.start(&end);
        Ok(())
    }

    /// A serial call: push a frame saving every function variable, pass
    /// arguments through the callee's parameter registers, and continue
    /// at a fresh block when the callee returns through `__fret`.
    pub(crate) fn lower_call(
        &mut self,
        func: &str,
        args: &[crate::ast::Expr],
        ret: Option<&str>,
    ) -> Result<(), LowerError> {
        let callee = self
            .ir
            .get(func)
            .ok_or_else(|| LowerError::UnknownFunction {
                name: func.to_owned(),
            })?;
        if callee.params.len() != args.len() {
            return Err(LowerError::ArityMismatch {
                name: func.to_owned(),
                expected: callee.params.len(),
                got: args.len(),
            });
        }
        let callee_name = callee.name.clone();
        let callee_params = callee.params.clone();
        self.require_fret();

        let sp = self.greg(SP);
        let cont = self.fresh_label("ret");
        let fvars = self.fvars.clone();
        let k = 1 + fvars.len() as u32;

        // Arguments first (they read the caller's live registers).
        let temps = self.eval_all_pinned(args);

        self.emit(Instr::SAlloc { sp, n: k });
        let cont_op = self.label_operand(&cont);
        self.sstore(sp, 0, cont_op);
        for (i, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sstore(sp, 1 + i as u32, r);
        }
        for (t, p) in temps.iter().zip(&callee_params) {
            let pr = self.vreg_of(&callee_name, p);
            self.mov(pr, *t);
        }
        self.reset_temps();
        self.finish_jump(&format!("{callee_name}__entry"));

        self.start(&cont);
        for (i, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sload(r, sp, 1 + i as u32);
        }
        self.emit(Instr::SFree { sp, n: k });
        if let Some(rvar) = ret {
            let dst = self.vreg(rvar);
            let rv = self.greg(RV);
            self.mov(dst, Operand::Reg(rv));
        }
        Ok(())
    }
}

/// Rejects parallel statements in serial-only positions.
fn ensure_serial(stmts: &[Stmt], context: &'static str) -> Result<(), LowerError> {
    for s in stmts {
        match s {
            Stmt::Par2 { .. } | Stmt::ParFor(_) | Stmt::ParForNested(_) => {
                return Err(LowerError::NestedParallelism { context })
            }
            Stmt::If { then_, else_, .. } => {
                ensure_serial(then_, context)?;
                ensure_serial(else_, context)?;
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                ensure_serial(body, context)?;
            }
            _ => {}
        }
    }
    Ok(())
}
