//! Lowering of binary fork-join (`Par2`).
//!
//! **Heartbeat mode** follows the paper's `fib` (Figures 22/23): the
//! frame pushed for the left call *advertises* the right call with a
//! promotion-ready mark. Serially, the continuation chain
//! `after_left → after_right` runs both calls back to back with zero
//! task-creation cost. On promotion, the generic handler retargets the
//! frame's continuation at `__joink`, stores the fresh join record in the
//! dead mark cell, and forks a child that enters the site's `centry`
//! block, loads the right call's arguments from the frame, and runs it on
//! a fresh stack.
//!
//! **Eager mode** is the Cilk execution model: the left call is forked
//! immediately at a cost paid on every spawn, the parent runs the right
//! call, and both meet at the join.

use tpal_core::isa::{Instr, JoinPolicy, RegMap};

use crate::ast::CallSpec;
use crate::lower::context::{
    Cx, F_CENTRY, F_CONT, F_LRES, F_MARK, F_RARGS, F_RCONT, RV, RV2, SP, SP_TOP,
};
use crate::lower::LowerError;

impl Cx<'_> {
    fn check_call(&self, c: &CallSpec) -> Result<(), LowerError> {
        let callee = self
            .ir
            .get(&c.func)
            .ok_or_else(|| LowerError::UnknownFunction {
                name: c.func.clone(),
            })?;
        if callee.params.len() != c.args.len() {
            return Err(LowerError::ArityMismatch {
                name: c.func.clone(),
                expected: callee.params.len(),
                got: c.args.len(),
            });
        }
        Ok(())
    }

    /// Heartbeat-mode `Par2`: serial-by-default with a latent right call.
    pub(crate) fn lower_par2_heartbeat(
        &mut self,
        site: u32,
        left: &CallSpec,
        right: &CallSpec,
    ) -> Result<(), LowerError> {
        self.check_call(left)?;
        self.check_call(right)?;
        self.require_fret();
        self.require_promotion_runtime();

        let sp = self.greg(SP);
        let rv = self.greg(RV);
        let f = self.f.clone();
        let fvars = self.fvars.clone();
        let nra = right.args.len() as u32;
        let k = F_RARGS + nra + fvars.len() as u32;

        let after_left = format!("{f}__p2al{site}");
        let after_right = format!("{f}__p2ar{site}");
        let centry = format!("{f}__p2ce{site}");
        let rcont = format!("{f}__p2rc{site}");
        let comb = format!("{f}__p2cb{site}");
        let post = format!("{f}__p2post{site}");

        // Evaluate the right call's arguments (stored latent in the
        // frame) and then the left call's (passed in registers).
        let rtemps = self.eval_all_pinned(&right.args);
        let ltemps = self.eval_all_pinned(&left.args);

        self.emit(Instr::SAlloc { sp, n: k });
        let al_op = self.label_operand(&after_left);
        self.sstore(sp, F_CONT, al_op);
        self.emit(Instr::PrmPush {
            addr: tpal_core::isa::MemAddr {
                base: sp,
                offset: F_MARK,
            },
        });
        let ce_op = self.label_operand(&centry);
        self.sstore(sp, F_CENTRY, ce_op);
        let rc_op = self.label_operand(&rcont);
        self.sstore(sp, F_RCONT, rc_op);
        for (i, t) in rtemps.iter().enumerate() {
            self.sstore(sp, F_RARGS + i as u32, *t);
        }
        for (j, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sstore(sp, F_RARGS + nra + j as u32, r);
        }
        let left_params = self.ir.get(&left.func).expect("checked").params.clone();
        let lfn = left.func.clone();
        for (t, p) in ltemps.iter().zip(&left_params) {
            let pr = self.vreg_of(&lfn, p);
            self.mov(pr, *t);
        }
        self.reset_temps();
        self.finish_jump(&format!("{lfn}__entry"));

        // after_left: the right call was not promoted; run it here.
        let right_params = self.ir.get(&right.func).expect("checked").params.clone();
        let rfn = right.func.clone();
        self.start(&after_left);
        self.emit(Instr::PrmPop {
            addr: tpal_core::isa::MemAddr {
                base: sp,
                offset: F_MARK,
            },
        });
        let ar_op = self.label_operand(&after_right);
        self.sstore(sp, F_CONT, ar_op);
        self.sstore(sp, F_LRES, rv);
        for (i, p) in right_params.iter().enumerate() {
            let pr = self.vreg_of(&rfn, p);
            self.sload(pr, sp, F_RARGS + i as u32);
        }
        self.finish_jump(&format!("{rfn}__entry"));

        // after_right: both calls done serially.
        self.start(&after_right);
        for (j, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sload(r, sp, F_RARGS + nra + j as u32);
        }
        let lt = self.treg("lres");
        self.sload(lt, sp, F_LRES);
        let lret = self.vreg(&left.ret);
        self.mov(lret, lt);
        let rret = self.vreg(&right.ret);
        self.mov(rret, rv);
        self.emit(Instr::SFree { sp, n: k });
        self.finish_jump(&post);

        // centry: a promoted child starts here with a fresh stack whose
        // base is [__joink, record]; `%sp_top` points at the frame.
        self.start(&centry);
        let sp_top = self.greg(SP_TOP);
        for (i, p) in right_params.iter().enumerate() {
            let pr = self.vreg_of(&rfn, p);
            self.sload(pr, sp_top, F_RARGS + i as u32);
        }
        self.finish_jump(&format!("{rfn}__entry"));

        // rcont: the record's continuation (join target).
        let rv_r = self.greg(RV);
        let rv2_r = self.greg(RV2);
        let comb_l = self.b.label(&comb);
        self.start_annotated(
            &rcont,
            tpal_core::isa::Annotation::JoinTarget {
                policy: JoinPolicy::AssocComm,
                merge: RegMap::new().with(rv_r, rv2_r),
                comb: comb_l,
            },
        );
        self.finish_jump(&post);

        // comb: merged pair; parent-side sp still points at the frame
        // (the generic __joink does not move it), so the saved state is
        // recovered here before the frame is freed. Unlike the serial
        // path, the left result never went through the frame: it is in
        // the parent side's `rv` (the left call returned straight into
        // __joink), and the child's right result arrives as `rv2`.
        self.start(&comb);
        for (j, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sload(r, sp, F_RARGS + nra + j as u32);
        }
        let lret = self.vreg(&left.ret);
        self.mov(lret, rv);
        let rret = self.vreg(&right.ret);
        self.mov(rret, rv2_r);
        self.emit(Instr::SFree { sp, n: k });
        let jrreg = self.treg("jr");
        self.finish(Instr::Join { jr: jrreg });

        self.start(&post);
        Ok(())
    }

    /// Eager-mode `Par2`: fork the left call immediately (Cilk spawn).
    pub(crate) fn lower_par2_eager(
        &mut self,
        site: u32,
        left: &CallSpec,
        right: &CallSpec,
    ) -> Result<(), LowerError> {
        self.check_call(left)?;
        self.check_call(right)?;
        self.require_fret();
        // Eager spawns return through the generic __joink block.
        self.require_promotion_runtime();

        let sp = self.greg(SP);
        let f = self.f.clone();
        let jr = self.sreg(site, "jr");

        let rcont = format!("{f}__e2rc{site}");
        let comb = format!("{f}__e2cb{site}");
        let post = format!("{f}__e2post{site}");
        let joined = format!("{f}__e2j{site}");

        // Evaluate both calls' arguments up front.
        let ltemps = self.eval_all_pinned(&left.args);
        let rtemps = self.eval_all_pinned(&right.args);

        let rc_op = self.label_operand(&rcont);
        self.emit(Instr::JrAlloc {
            dst: jr,
            cont: rc_op,
        });

        // Push the parent's continuation frame for the right call FIRST:
        // the saved variables must be the caller's values, which setting
        // the left call's parameter registers would clobber under
        // self-recursion.
        let fvars = self.fvars.clone();
        let k = 1 + fvars.len() as u32;
        let cont = self.fresh_label("e2ret");
        self.emit(Instr::SAlloc { sp, n: k });
        let cont_op = self.label_operand(&cont);
        self.sstore(sp, 0, cont_op);
        for (i, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sstore(sp, 1 + i as u32, r);
        }

        // Child: runs the left call on a fresh stack whose base returns
        // through __joink.
        let left_params = self.ir.get(&left.func).expect("checked").params.clone();
        let lfn = left.func.clone();
        for (t, p) in ltemps.iter().zip(&left_params) {
            let pr = self.vreg_of(&lfn, p);
            self.mov(pr, *t);
        }
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        self.emit(Instr::SAlloc { sp, n: 2 });
        let joink = self.label_operand("__joink");
        self.sstore(sp, F_CONT, joink);
        self.sstore(sp, F_MARK, jr);
        let lentry = self.label_operand(&format!("{lfn}__entry"));
        self.emit(Instr::Fork { jr, target: lentry });
        self.mov(sp, tsp);

        // Parent: run the right call serially, then join.
        let right_params = self.ir.get(&right.func).expect("checked").params.clone();
        let rfn = right.func.clone();
        for (t, p) in rtemps.iter().zip(&right_params) {
            let pr = self.vreg_of(&rfn, p);
            self.mov(pr, *t);
        }
        self.reset_temps();
        self.finish_jump(&format!("{rfn}__entry"));

        self.start(&cont);
        for (i, v) in fvars.iter().enumerate() {
            let r = self.vreg(v);
            self.sload(r, sp, 1 + i as u32);
        }
        self.emit(Instr::SFree { sp, n: k });
        let rret = self.vreg(&right.ret);
        let rv = self.greg(RV);
        self.mov(rret, rv);
        self.finish_jump(&joined);

        self.start(&joined);
        self.finish(Instr::Join { jr });

        // Join continuation: child's rv (left result) arrives as rv2.
        let rv_r = self.greg(RV);
        let rv2_r = self.greg(RV2);
        let comb_l = self.b.label(&comb);
        self.start_annotated(
            &rcont,
            tpal_core::isa::Annotation::JoinTarget {
                policy: JoinPolicy::AssocComm,
                merge: RegMap::new().with(rv_r, rv2_r),
                comb: comb_l,
            },
        );
        self.finish_jump(&post);

        self.start(&comb);
        let lret = self.vreg(&left.ret);
        self.mov(lret, rv2_r);
        self.finish(Instr::Join { jr });

        self.start(&post);
        Ok(())
    }
}
