//! Lowering of two-level parallel loop nests (`ParForNested`).
//!
//! The heartbeat template implements Appendix B.1's
//! promote-the-outermost-parallelism-first policy, generalising the
//! paper's `pow`: every heartbeat handler first offers latent *calls*
//! (mark list), then remaining *outer* iterations — but only when the
//! interrupted task owns them, tracked by an ownership flag transferred
//! away at inner forks (see `programs.rs` in `tpal-core` for why the
//! paper's register-only Figure 18 needs this) — and only then splits the
//! inner loop.
//!
//! Serial and eager modes delegate to the plain loop lowerings by
//! rebuilding the nest as ordinary (Par)For statements, which is exactly
//! Cilk's behaviour (each level decomposed eagerly and independently).

use tpal_core::isa::{Annotation, BinOp, Instr};

use crate::ast::{ParFor, ParForNested};
use crate::lower::context::{Cx, ABORT, SP};
use crate::lower::LowerError;

impl Cx<'_> {
    /// Serial mode: a plain loop nest.
    pub(crate) fn lower_nested_serial(&mut self, n: &ParForNested) -> Result<(), LowerError> {
        // Site scratch slots double as the loop bounds; the nest is
        // emitted inline rather than via Stmt::For so no for-counter slot
        // (which the collector did not allocate) is consumed.
        let outer_hi = format!("%s{}_hi", self.site - 2);
        let inner_hi = format!("%s{}_hi", self.site - 1);

        // Outer loop, inlined.
        let ov = self.vreg(&n.outer_var);
        self.eval_into(&n.outer_from, ov);
        let ohi = self.vreg(&outer_hi);
        self.eval_into(&n.outer_to, ohi);
        let ohead = self.fresh_label("nsout");
        let obody = self.fresh_label("nsoutb");
        let oend = self.fresh_label("nsoutend");
        self.finish_jump(&ohead);
        self.start(&ohead);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, ov, ohi);
        self.if_jump(t, &obody);
        self.finish_jump(&oend);
        self.start(&obody);
        self.lower_stmts(&n.pre)?;
        self.lower_serial_for(
            &n.inner_var,
            &n.inner_from,
            &n.inner_to,
            &n.inner_body,
            &inner_hi,
        )?;
        self.lower_stmts(&n.post)?;
        if self.in_block() {
            let ov = self.vreg(&n.outer_var);
            self.op(ov, BinOp::Add, ov, 1);
            self.finish_jump(&ohead);
        }
        self.start(&oend);
        Ok(())
    }

    /// Eager mode: Cilk parallelises the *outer* loop only (the standard
    /// `cilk_for`-over-rows port); the inner loop runs serially inside
    /// each chunk. This is precisely why the paper's irregular matrices
    /// (one giant row) defeat the eager baseline: the giant row cannot
    /// be split once a fixed-grain chunk owns it, whereas heartbeat
    /// promotion keeps splitting it on demand.
    pub(crate) fn lower_nested_eager(
        &mut self,
        site: u32,
        n: &ParForNested,
        workers: u32,
    ) -> Result<(), LowerError> {
        let outer = ParFor {
            var: n.outer_var.clone(),
            from: n.outer_from.clone(),
            to: n.outer_to.clone(),
            body: Vec::new(), // lowered manually below
            reducers: n.outer_reducers.clone(),
        };
        let inner_hi = format!("%s{}_hi", site + 1);
        self.lower_parfor_eager_with_body(site, &outer, workers, |cx| {
            cx.lower_stmts(&n.pre)?;
            // The inner reducers' identities are established by `pre`
            // (serial semantics: no inner tasks, so no identity seeding
            // is needed).
            cx.lower_serial_for(
                &n.inner_var,
                &n.inner_from,
                &n.inner_to,
                &n.inner_body,
                &inner_hi,
            )?;
            cx.lower_stmts(&n.post)?;
            Ok(())
        })
    }

    /// Heartbeat mode: the outer-loop-first nest template.
    pub(crate) fn lower_nested_heartbeat(
        &mut self,
        site: u32,
        n: &ParForNested,
    ) -> Result<(), LowerError> {
        let f = self.f.clone();
        let isite = site + 1;

        let oloop = format!("{f}__no{site}");
        let obody = format!("{f}__nob{site}");
        let iloop = format!("{f}__ni{site}");
        let ibody = format!("{f}__nib{site}");
        let iexit = format!("{f}__nix{site}");
        let ijoin = format!("{f}__nij{site}");
        let icont = format!("{f}__nic{site}");
        let icomb = format!("{f}__nicb{site}");
        let ipost = format!("{f}__nip{site}");
        let oexit = format!("{f}__nox{site}");
        let ojoin = format!("{f}__noj{site}");
        let ocont = format!("{f}__noc{site}");
        let ocomb = format!("{f}__nocb{site}");
        let opost = format!("{f}__nop{site}");
        let h_outer = format!("{f}__nho{site}");
        let h_inner = format!("{f}__nhi{site}");
        let try_outer = format!("{f}__nto{site}");
        let try_outer2 = format!("{f}__nto2{site}");
        let oalloc = format!("{f}__noa{site}");
        let opromote = format!("{f}__nopr{site}");
        let ochild = format!("{f}__nocd{site}");
        let try_inner = format!("{f}__nti{site}");
        let habort = format!("{f}__nha{site}");
        let ialloc = format!("{f}__nia{site}");
        let ipromote = format!("{f}__nipr{site}");
        let ichild = format!("{f}__nicd{site}");

        let ov = self.vreg(&n.outer_var);
        let ohi = self.sreg(site, "hi");
        let ojr = self.sreg(site, "jr");
        let own = self.sreg(site, "own");
        let iv = self.vreg(&n.inner_var);
        let ihi = self.sreg(isite, "hi");
        let ijr = self.sreg(isite, "jr");
        let sp = self.greg(SP);
        self.require_promotion_runtime(); // handlers may promote marks

        // Entry.
        self.eval_into(&n.outer_from, ov);
        self.eval_into(&n.outer_to, ohi);
        self.mov(ojr, 0);
        self.mov(own, 0); // this task owns the outer range
        self.mov(iv, 0);
        self.mov(ihi, 0); // handlers see the inner loop as idle
        self.finish_jump(&oloop);

        // Outer loop header.
        let ho = self.b.label(&h_outer);
        self.start_annotated(&oloop, Annotation::PromotionReady { handler: ho });
        let t = self.treg("t");
        self.op(t, BinOp::Lt, ov, ohi);
        self.if_jump(t, &obody);
        self.finish_jump(&oexit);

        self.start(&obody);
        self.lower_stmts(&n.pre)?;
        self.mov(ijr, 0);
        self.eval_into(&n.inner_from, iv);
        self.eval_into(&n.inner_to, ihi);
        self.finish_jump(&iloop);

        // Inner loop header.
        let hi_l = self.b.label(&h_inner);
        self.start_annotated(&iloop, Annotation::PromotionReady { handler: hi_l });
        let t = self.treg("t");
        self.op(t, BinOp::Lt, iv, ihi);
        self.if_jump(t, &ibody);
        self.finish_jump(&iexit);

        self.start(&ibody);
        self.lower_stmts(&n.inner_body)?;
        if self.in_block() {
            let iv = self.vreg(&n.inner_var);
            self.op(iv, BinOp::Add, iv, 1);
            self.finish_jump(&iloop);
        }

        // Inner exit: join only if the inner loop was ever promoted.
        self.start(&iexit);
        self.if_jump(ijr, &ipost);
        self.finish_jump(&ijoin);
        self.start(&ijoin);
        self.finish(Instr::Join { jr: ijr });
        let idelta = self.reducer_delta(&n.inner_reducers);
        self.emit_join_cont(&icont, &icomb, idelta, &n.inner_reducers, ijr, &ipost);

        // Per-iteration epilogue; mark the inner loop idle again.
        self.start(&ipost);
        self.lower_stmts(&n.post)?;
        if self.in_block() {
            let iv = self.vreg(&n.inner_var);
            self.mov(iv, 0);
            self.mov(ihi, 0);
            let ov = self.vreg(&n.outer_var);
            self.op(ov, BinOp::Add, ov, 1);
            self.finish_jump(&oloop);
        }

        // Outer exit.
        self.start(&oexit);
        self.if_jump(ojr, &opost);
        self.finish_jump(&ojoin);
        self.start(&ojoin);
        self.finish(Instr::Join { jr: ojr });
        let odelta = self.reducer_delta(&n.outer_reducers);
        self.emit_join_cont(&ocont, &ocomb, odelta, &n.outer_reducers, ojr, &opost);

        // ----- heartbeat handlers -----
        let abort = self.greg(ABORT);

        // From the outer header.
        self.start(&h_outer);
        let e = self.treg("e");
        self.emit(Instr::PrmEmpty { dst: e, sp });
        let oloop_op = self.label_operand(&oloop);
        self.mov(abort, oloop_op);
        self.if_jump(e, &try_outer); // no marks → loop-level promotion
        self.finish_jump("__do_promote");

        // From the inner header.
        self.start(&h_inner);
        let e = self.treg("e");
        self.emit(Instr::PrmEmpty { dst: e, sp });
        let iloop_op = self.label_operand(&iloop);
        self.mov(abort, iloop_op);
        self.if_jump(e, &try_outer);
        self.finish_jump("__do_promote");

        // try_outer: only the owner may split the outer range.
        self.start(&try_outer);
        self.if_jump(own, &try_outer2); // own == 0 (true) → owner
        self.finish_jump(&try_inner);

        self.start(&try_outer2);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, ohi, ov);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, rem, 2);
        self.if_jump(t, &try_inner);
        self.if_jump(ojr, &oalloc);
        self.finish_jump(&opromote);

        self.start(&oalloc);
        let ocont_op = self.label_operand(&ocont);
        self.emit(Instr::JrAlloc {
            dst: ojr,
            cont: ocont_op,
        });
        self.finish_jump(&opromote);

        // opromote: child takes outer [mid, ohi) with identity outer
        // reducers, an idle inner loop, a fresh stack, and ownership of
        // its half.
        self.start(&opromote);
        let rem = self.treg("rem");
        let half = self.treg("half");
        let mid = self.treg("mid");
        self.op(rem, BinOp::Sub, ohi, ov);
        self.op(half, BinOp::Div, rem, 2);
        self.op(mid, BinOp::Sub, ohi, half);
        let ti = self.treg("ti");
        self.mov(ti, ov);
        self.mov(ov, mid);
        let parked = self.park_reducers(&n.outer_reducers);
        let tj = self.treg("tj");
        let tihi = self.treg("tihi");
        self.mov(tj, iv);
        self.mov(tihi, ihi);
        self.mov(iv, 0);
        self.mov(ihi, 0);
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        let ochild_op = self.label_operand(&ochild);
        self.emit(Instr::Fork {
            jr: ojr,
            target: ochild_op,
        });
        self.mov(sp, tsp);
        self.mov(ov, ti);
        self.mov(ohi, mid);
        self.mov(iv, tj);
        self.mov(ihi, tihi);
        self.unpark_reducers(&n.outer_reducers, &parked);
        self.reset_temps();
        self.finish(Instr::Jump {
            target: tpal_core::isa::Operand::Reg(abort),
        });

        self.start(&ochild);
        self.finish_jump(&oloop);

        // try_inner: split the inner range.
        self.start(&try_inner);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, ihi, iv);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, rem, 2);
        self.if_jump(t, &habort);
        self.if_jump(ijr, &ialloc);
        self.finish_jump(&ipromote);

        self.start(&habort);
        self.finish(Instr::Jump {
            target: tpal_core::isa::Operand::Reg(abort),
        });

        self.start(&ialloc);
        let icont_op = self.label_operand(&icont);
        self.emit(Instr::JrAlloc {
            dst: ijr,
            cont: icont_op,
        });
        self.finish_jump(&ipromote);

        // ipromote: child takes inner [mid, ihi); ownership of the outer
        // range stays with the promoting task.
        self.start(&ipromote);
        let rem = self.treg("rem");
        let half = self.treg("half");
        let mid = self.treg("mid");
        self.op(rem, BinOp::Sub, ihi, iv);
        self.op(half, BinOp::Div, rem, 2);
        self.op(mid, BinOp::Sub, ihi, half);
        let tj = self.treg("tj");
        self.mov(tj, iv);
        self.mov(iv, mid);
        let parked = self.park_reducers(&n.inner_reducers);
        let town = self.treg("town");
        self.mov(town, own);
        self.mov(own, 1); // the child does not own the outer range
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        let ichild_op = self.label_operand(&ichild);
        self.emit(Instr::Fork {
            jr: ijr,
            target: ichild_op,
        });
        self.mov(sp, tsp);
        self.mov(own, town);
        self.mov(iv, tj);
        self.mov(ihi, mid);
        self.unpark_reducers(&n.inner_reducers, &parked);
        self.reset_temps();
        self.finish(Instr::Jump {
            target: tpal_core::isa::Operand::Reg(abort),
        });

        self.start(&ichild);
        self.finish_jump(&iloop);

        self.start(&opost);
        Ok(())
    }

    /// An eager parallel loop whose body is emitted by a closure (used by
    /// the eager nest lowering, whose inner loop cannot be expressed as a
    /// plain statement without desynchronising site numbering).
    pub(crate) fn lower_parfor_eager_with_body(
        &mut self,
        site: u32,
        pf: &ParFor,
        workers: u32,
        body: impl FnOnce(&mut Self) -> Result<(), LowerError>,
    ) -> Result<(), LowerError> {
        let f = self.f.clone();
        let split = format!("{f}__ef{site}");
        let alloc = format!("{f}__efalloc{site}");
        let fork_l = format!("{f}__effork{site}");
        let child = format!("{f}__efchild{site}");
        let leaf = format!("{f}__efleaf{site}");
        let lhead = format!("{f}__eflh{site}");
        let lbody = format!("{f}__eflb{site}");
        let exit = format!("{f}__efexit{site}");
        let join_l = format!("{f}__efjoin{site}");
        let cont = format!("{f}__efcont{site}");
        let comb = format!("{f}__efcomb{site}");
        let post = format!("{f}__efpost{site}");

        let v = self.vreg(&pf.var);
        let hi = self.sreg(site, "hi");
        let jr = self.sreg(site, "jr");
        let grain = self.sreg(site, "grain");
        let sp = self.greg(SP);

        self.eval_into(&pf.from, v);
        self.eval_into(&pf.to, hi);
        self.mov(jr, 0);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, hi, v);
        self.op(grain, BinOp::Div, rem, (8 * workers.max(1)) as i64);
        self.op(grain, BinOp::Max, grain, 1);
        self.finish_jump(&split);

        self.start(&split);
        let rem = self.treg("rem");
        let t = self.treg("t");
        self.op(rem, BinOp::Sub, hi, v);
        self.op(t, BinOp::Le, rem, grain);
        self.if_jump(t, &leaf);
        self.if_jump(jr, &alloc);
        self.finish_jump(&fork_l);

        self.start(&alloc);
        let cont_op = self.label_operand(&cont);
        self.emit(Instr::JrAlloc {
            dst: jr,
            cont: cont_op,
        });
        self.finish_jump(&fork_l);

        self.start(&fork_l);
        let mid = self.treg("mid");
        self.op(mid, BinOp::Add, v, hi);
        self.op(mid, BinOp::Div, mid, 2);
        let ti = self.treg("ti");
        self.mov(ti, v);
        self.mov(v, mid);
        let parked = self.park_reducers(&pf.reducers);
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        let child_op = self.label_operand(&child);
        self.emit(Instr::Fork {
            jr,
            target: child_op,
        });
        self.mov(sp, tsp);
        self.mov(v, ti);
        self.mov(hi, mid);
        self.unpark_reducers(&pf.reducers, &parked);
        self.reset_temps();
        self.finish_jump(&split);

        self.start(&child);
        self.finish_jump(&split);

        self.start(&leaf);
        self.finish_jump(&lhead);
        self.start(&lhead);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, v, hi);
        self.if_jump(t, &lbody);
        self.finish_jump(&exit);
        self.start(&lbody);
        body(self)?;
        if self.in_block() {
            let v = self.vreg(&pf.var);
            self.op(v, BinOp::Add, v, 1);
            self.finish_jump(&lhead);
        }

        self.start(&exit);
        self.if_jump(jr, &post);
        self.finish_jump(&join_l);
        self.start(&join_l);
        self.finish(Instr::Join { jr });

        let delta = self.reducer_delta(&pf.reducers);
        self.emit_join_cont(&cont, &comb, delta, &pf.reducers, jr, &post);

        self.start(&post);
        Ok(())
    }
}
