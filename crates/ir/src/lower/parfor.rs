//! Lowering of parallel loops (`ParFor`).
//!
//! **Heartbeat mode** is the paper's `prod` pattern (Figure 2): the loop
//! runs serially on registers with zero per-iteration parallelism cost;
//! a heartbeat diverts to the site's handler, which first offers any
//! *older* latent calls on the mark list (outermost-first), then splits
//! the remaining iteration range in half, forking the upper half. All
//! splits of one loop instance share one join record; reducers combine
//! pairwise at the join tree.
//!
//! **Eager mode** is Cilk's `cilk_for`: the range is divided up front by
//! recursive binary splitting until chunks reach the `8P` grain.

use tpal_core::isa::{Annotation, BinOp, Instr};

use crate::ast::ParFor;
use crate::lower::context::{Cx, ABORT, SP};
use crate::lower::LowerError;

impl Cx<'_> {
    /// Heartbeat-mode parallel loop.
    pub(crate) fn lower_parfor_heartbeat(
        &mut self,
        site: u32,
        pf: &ParFor,
    ) -> Result<(), LowerError> {
        let f = self.f.clone();
        let head = format!("{f}__pf{site}");
        let body_l = format!("{f}__pfbody{site}");
        let exit = format!("{f}__pfexit{site}");
        let join_l = format!("{f}__pfjoin{site}");
        let cont = format!("{f}__pfcont{site}");
        let comb = format!("{f}__pfcomb{site}");
        let handler = format!("{f}__pfh{site}");
        let h_own = format!("{f}__pfhown{site}");
        let h_alloc = format!("{f}__pfhalloc{site}");
        let h_split = format!("{f}__pfhsplit{site}");
        let child = format!("{f}__pfchild{site}");
        let post = format!("{f}__pfpost{site}");

        let v = self.vreg(&pf.var);
        let hi = self.sreg(site, "hi");
        let jr = self.sreg(site, "jr");
        let sp = self.greg(SP);

        // Loop entry.
        self.eval_into(&pf.from, v);
        self.eval_into(&pf.to, hi);
        self.mov(jr, 0);
        self.finish_jump(&head);

        // head: [prppt handler]
        let hlabel = self.b.label(&handler);
        self.start_annotated(&head, Annotation::PromotionReady { handler: hlabel });
        let t = self.treg("t");
        self.op(t, BinOp::Lt, v, hi);
        self.if_jump(t, &body_l);
        self.finish_jump(&exit);

        self.start(&body_l);
        self.lower_stmts(&pf.body)?;
        if self.in_block() {
            let v = self.vreg(&pf.var);
            self.op(v, BinOp::Add, v, 1);
            self.finish_jump(&head);
        }

        // exit: the serial path (record never allocated) goes straight to
        // the continuation; promoted tasks join.
        self.start(&exit);
        self.if_jump(jr, &post); // jr == 0 → never promoted
        self.finish_jump(&join_l);

        self.start(&join_l);
        self.finish(Instr::Join { jr });

        // Join continuation and combining block.
        let delta = self.reducer_delta(&pf.reducers);
        self.emit_join_cont(&cont, &comb, delta, &pf.reducers, jr, &post);

        // handler: older latent calls first (outermost-first policy).
        self.start(&handler);
        let e = self.treg("e");
        self.emit(Instr::PrmEmpty { dst: e, sp });
        self.if_jump(e, &h_own); // no marks → consider our own range
        self.require_promotion_runtime();
        let abort = self.greg(ABORT);
        let head_op = self.label_operand(&head);
        self.mov(abort, head_op);
        self.finish_jump("__do_promote");

        // h_own: split our range if at least two iterations remain.
        self.start(&h_own);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, hi, v);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, rem, 2);
        self.if_jump(t, &head); // nothing to promote → resume
        self.if_jump(jr, &h_alloc); // first promotion allocates the record
        self.finish_jump(&h_split);

        self.start(&h_alloc);
        let cont_op = self.label_operand(&cont);
        self.emit(Instr::JrAlloc {
            dst: jr,
            cont: cont_op,
        });
        self.finish_jump(&h_split);

        // h_split: child takes [mid, hi) with identity reducers and a
        // fresh stack; the parent keeps [i, mid).
        self.start(&h_split);
        let rem = self.treg("rem");
        let half = self.treg("half");
        let mid = self.treg("mid");
        self.op(rem, BinOp::Sub, hi, v);
        self.op(half, BinOp::Div, rem, 2);
        self.op(mid, BinOp::Sub, hi, half);
        let ti = self.treg("ti");
        self.mov(ti, v);
        self.mov(v, mid);
        let parked = self.park_reducers(&pf.reducers);
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        let child_op = self.label_operand(&child);
        self.emit(Instr::Fork {
            jr,
            target: child_op,
        });
        self.mov(sp, tsp);
        self.mov(v, ti);
        self.mov(hi, mid);
        self.unpark_reducers(&pf.reducers, &parked);
        self.reset_temps();
        self.finish_jump(&head);

        self.start(&child);
        self.finish_jump(&head);

        self.start(&post);
        Ok(())
    }

    /// Heartbeat-mode parallel loop in the *expanded* block style of the
    /// paper's §D.5: separate serial and parallel loop blocks, as in the
    /// `prod` listing (Figure 2). The never-promoted serial path exits
    /// straight to the continuation with no join-record code — the
    /// deepest specialisation — at the cost of emitting the body twice.
    pub(crate) fn lower_parfor_expanded(
        &mut self,
        site: u32,
        pf: &ParFor,
    ) -> Result<(), LowerError> {
        let f = self.f.clone();
        let shead = format!("{f}__pxs{site}");
        let sbody = format!("{f}__pxsb{site}");
        let phead = format!("{f}__pxp{site}");
        let pbody = format!("{f}__pxpb{site}");
        let join_l = format!("{f}__pxjoin{site}");
        let cont = format!("{f}__pxcont{site}");
        let comb = format!("{f}__pxcomb{site}");
        let h_s = format!("{f}__pxhs{site}");
        let h_p = format!("{f}__pxhp{site}");
        let h_own_s = format!("{f}__pxhos{site}");
        let h_own_p = format!("{f}__pxhop{site}");
        let h_alloc = format!("{f}__pxhalloc{site}");
        let h_split = format!("{f}__pxhsplit{site}");
        let child = format!("{f}__pxchild{site}");
        let post = format!("{f}__pxpost{site}");

        let v = self.vreg(&pf.var);
        let hi = self.sreg(site, "hi");
        let jr = self.sreg(site, "jr");
        let sp = self.greg(SP);

        // Entry: note no `jr := 0` — the serial path never reads it.
        self.eval_into(&pf.from, v);
        self.eval_into(&pf.to, hi);
        self.finish_jump(&shead);

        // Serial loop: [prppt h_s]; exits STRAIGHT to post.
        let hslabel = self.b.label(&h_s);
        self.start_annotated(&shead, Annotation::PromotionReady { handler: hslabel });
        let t = self.treg("t");
        self.op(t, BinOp::Lt, v, hi);
        self.if_jump(t, &sbody);
        self.finish_jump(&post);

        let forc_mark = self.forc;
        self.start(&sbody);
        self.lower_stmts(&pf.body)?;
        if self.in_block() {
            let v = self.vreg(&pf.var);
            self.op(v, BinOp::Add, v, 1);
            self.finish_jump(&shead);
        }

        // Parallel loop: [prppt h_p]; exits to an unconditional join.
        let hplabel = self.b.label(&h_p);
        self.start_annotated(&phead, Annotation::PromotionReady { handler: hplabel });
        let t = self.treg("t");
        self.op(t, BinOp::Lt, v, hi);
        self.if_jump(t, &pbody);
        self.finish_jump(&join_l);

        // Second body emission replays the serial-for scratch numbering
        // of the first (only one copy runs per task instance, so sharing
        // the saved slots is sound).
        self.forc = forc_mark;
        self.start(&pbody);
        self.lower_stmts(&pf.body)?;
        if self.in_block() {
            let v = self.vreg(&pf.var);
            self.op(v, BinOp::Add, v, 1);
            self.finish_jump(&phead);
        }

        self.start(&join_l);
        self.finish(Instr::Join { jr });

        let delta = self.reducer_delta(&pf.reducers);
        self.emit_join_cont(&cont, &comb, delta, &pf.reducers, jr, &post);

        // Handlers: the serial one allocates the record on the first
        // promotion (prod's loop-try-promote); the parallel one reuses it
        // (loop-par-try-promote). Both offer older latent calls first.
        for (handler, own, abort) in [(&h_s, &h_own_s, &shead), (&h_p, &h_own_p, &phead)] {
            self.start(handler);
            let e = self.treg("e");
            self.emit(Instr::PrmEmpty { dst: e, sp });
            self.if_jump(e, own);
            self.require_promotion_runtime();
            let abort_r = self.greg(ABORT);
            let abort_op = self.label_operand(abort);
            self.mov(abort_r, abort_op);
            self.finish_jump("__do_promote");
        }

        self.start(&h_own_s);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, hi, v);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, rem, 2);
        self.if_jump(t, &shead);
        self.finish_jump(&h_alloc);

        self.start(&h_alloc);
        let cont_op = self.label_operand(&cont);
        self.emit(Instr::JrAlloc {
            dst: jr,
            cont: cont_op,
        });
        self.finish_jump(&h_split);

        self.start(&h_own_p);
        let rem = self.treg("rem");
        self.op(rem, BinOp::Sub, hi, v);
        let t = self.treg("t");
        self.op(t, BinOp::Lt, rem, 2);
        self.if_jump(t, &phead);
        self.finish_jump(&h_split);

        self.start(&h_split);
        let rem = self.treg("rem");
        let half = self.treg("half");
        let mid = self.treg("mid");
        self.op(rem, BinOp::Sub, hi, v);
        self.op(half, BinOp::Div, rem, 2);
        self.op(mid, BinOp::Sub, hi, half);
        let ti = self.treg("ti");
        self.mov(ti, v);
        self.mov(v, mid);
        let parked = self.park_reducers(&pf.reducers);
        let tsp = self.treg("tsp");
        self.mov(tsp, sp);
        self.emit(Instr::SNew { dst: sp });
        let child_op = self.label_operand(&child);
        self.emit(Instr::Fork {
            jr,
            target: child_op,
        });
        self.mov(sp, tsp);
        self.mov(v, ti);
        self.mov(hi, mid);
        self.unpark_reducers(&pf.reducers, &parked);
        self.reset_temps();
        self.finish_jump(&phead);

        self.start(&child);
        self.finish_jump(&phead);

        self.start(&post);
        Ok(())
    }

    /// Eager-mode parallel loop: Cilk's `8P`-grain recursive binary
    /// splitting (see [`Cx::lower_parfor_eager_with_body`]).
    pub(crate) fn lower_parfor_eager(
        &mut self,
        site: u32,
        pf: &ParFor,
        workers: u32,
    ) -> Result<(), LowerError> {
        self.lower_parfor_eager_with_body(site, pf, workers, |cx| cx.lower_stmts(&pf.body))
    }
}
