//! Lowering from the task-parallel IR to TPAL.
//!
//! The lowering implements the paper's *code versioning* (§3.1): each
//! parallel construct compiles to serial-by-default blocks plus, in
//! heartbeat mode, promotion-ready program points, handler blocks that
//! manifest latent parallelism, and parallel blocks entered only after a
//! promotion. The calling convention and promotion machinery for
//! recursion follow Appendix B.2: every call pushes a frame; a `Par2`
//! frame additionally carries a promotion-ready mark, the child's entry
//! label and arguments, and the join continuation, so that the *generic*
//! promotion handler can reify the oldest latent call without knowing its
//! site.
//!
//! Frame layouts (offsets from the frame's newest cell):
//!
//! ```text
//! serial call frame: [cont, saved vars…]
//! par2 frame:        [cont, mark, child-entry, join-cont, left-result,
//!                     right-args…, saved vars…]
//! ```
//!
//! See the submodules for the three parallel templates:
//! [`parfor`](self) (loop splitting after Figure 2), `par2` (latent
//! calls after Figures 22/23), and `nested` (the outer-loop-first nest of
//! Appendix B.1).

mod context;
mod nested;
mod par2;
mod parfor;
mod stmts;

use std::fmt;

use tpal_core::program::{Program, ValidationError};

use crate::ast::IrProgram;
pub(crate) use context::Cx;

/// The lowering mode: which executable is produced from the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Erase all parallelism: the serial baseline.
    Serial,
    /// Heartbeat scheduling: serial-by-default with promotion-ready
    /// program points (TPAL proper). Parallel loops use the *reduced*
    /// block style of the paper's §D.5: one loop block shared by the
    /// serial and parallel phases, with a sentinel join record.
    Heartbeat,
    /// Heartbeat scheduling with the *expanded* block style of §D.5:
    /// separate serial and parallel loop blocks, so the never-promoted
    /// path carries no join-record code at all, at the cost of emitting
    /// each loop body twice. (Par2 and nested loops are unaffected.)
    HeartbeatExpanded,
    /// Cilk-style eager decomposition: spawn at every fork point, and
    /// split parallel loops into `8 × workers` chunks up front.
    Eager {
        /// The worker count `P` used by the `8P` grain heuristic.
        workers: u32,
    },
}

impl Mode {
    /// Whether this mode performs heartbeat scheduling (either block
    /// style).
    pub fn is_heartbeat(self) -> bool {
        matches!(self, Mode::Heartbeat | Mode::HeartbeatExpanded)
    }
}

/// An error found while lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// A call referenced an unknown function.
    UnknownFunction {
        /// The missing name.
        name: String,
    },
    /// A call passed the wrong number of arguments.
    ArityMismatch {
        /// Callee.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments at the call.
        got: usize,
    },
    /// A parallel statement appeared where only serial statements are
    /// allowed (inside a `ParFor` body or the serial sections of a
    /// `ParForNested`).
    NestedParallelism {
        /// Which construct contained it.
        context: &'static str,
    },
    /// The entry function named by the program does not exist.
    MissingEntry {
        /// The entry name.
        name: String,
    },
    /// The generated program failed TPAL validation (a lowering bug;
    /// please report it).
    Validation(ValidationError),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            LowerError::ArityMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "call to `{name}` passes {got} arguments, expected {expected}"
            ),
            LowerError::NestedParallelism { context } => {
                write!(
                    f,
                    "parallel statement inside {context} (use ParForNested or a callee)"
                )
            }
            LowerError::MissingEntry { name } => write!(f, "entry function `{name}` not found"),
            LowerError::Validation(e) => write!(f, "generated program invalid: {e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<ValidationError> for LowerError {
    fn from(e: ValidationError) -> Self {
        LowerError::Validation(e)
    }
}

/// The result of lowering: a validated TPAL program plus the register
/// names through which the harness passes inputs and reads the result.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The TPAL program.
    pub program: Program,
    /// Name of the entry function.
    pub entry: String,
    /// Register holding the entry function's return value after `halt`.
    pub result_reg: String,
}

impl Lowered {
    /// The register name carrying the entry parameter `param` (seed it
    /// with [`tpal_core::machine::Machine::set_reg`] before running).
    pub fn param_reg(&self, param: &str) -> String {
        format!("{}.{}", self.entry, param)
    }
}

/// Lowers an IR program to TPAL in the given mode.
///
/// # Errors
///
/// Any [`LowerError`]: unresolved or misused functions, parallelism where
/// only serial statements are allowed, or (indicating a bug in this
/// crate) a generated program that fails validation.
pub fn lower(ir: &IrProgram, mode: Mode) -> Result<Lowered, LowerError> {
    let entry = ir.get(&ir.entry).ok_or_else(|| LowerError::MissingEntry {
        name: ir.entry.clone(),
    })?;

    let mut cx = Cx::new(ir, mode);
    cx.emit_main_wrapper(&entry.name);
    for f in &ir.functions {
        cx.lower_function(f)?;
    }
    cx.emit_runtime_blocks();

    Ok(Lowered {
        program: cx.into_program()?,
        entry: ir.entry.clone(),
        result_reg: "result".to_owned(),
    })
}
