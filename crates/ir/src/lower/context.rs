//! The lowering context: block emission, register naming, expression
//! code generation, and the shared runtime blocks.

use tpal_core::isa::{Annotation, BinOp, Instr, JoinPolicy, MemAddr, Operand, Reg, RegMap};
use tpal_core::program::{Program, ProgramBuilder};

use crate::ast::{Expr, Function, IrProgram, Reducer, Stmt};
use crate::lower::{LowerError, Mode};

/// Global (function-independent) register names used by the calling
/// convention and the promotion runtime.
pub(crate) const RV: &str = "rv";
pub(crate) const RV2: &str = "rv2";
pub(crate) const SP: &str = "sp";
pub(crate) const SP_TOP: &str = "%sp_top";
pub(crate) const ABORT: &str = "%abort";

/// Fixed cell offsets of a `Par2` frame (see the module docs of
/// [`crate::lower`]).
pub(crate) const F_CONT: u32 = 0;
pub(crate) const F_MARK: u32 = 1;
pub(crate) const F_CENTRY: u32 = 2;
pub(crate) const F_RCONT: u32 = 3;
pub(crate) const F_LRES: u32 = 4;
pub(crate) const F_RARGS: u32 = 5;

pub(crate) struct Cx<'a> {
    pub ir: &'a IrProgram,
    pub mode: Mode,
    pub b: ProgramBuilder,
    /// Current function name.
    pub f: String,
    /// All saved-at-call registers of the current function, in frame
    /// order.
    pub fvars: Vec<String>,
    /// Per-function site counter (parallel constructs).
    pub site: u32,
    /// Per-function serial-for counter (loop-bound scratch slots).
    pub forc: u32,
    /// Fresh-label counter.
    fresh: u32,
    /// Expression temp depth.
    tdepth: u32,
    /// Current open block: (name, annotation, instructions).
    cur: Option<(String, Annotation, Vec<Instr>)>,
    /// Whether any Par2 exists anywhere (decides entry annotations and
    /// the promotion runtime blocks).
    pub has_par2: bool,
    /// Whether the promotion runtime (do_promote/joink) is required.
    need_promote_rt: bool,
    /// Whether fret is required.
    need_fret: bool,
}

fn stmts_contain_par2(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Par2 { .. } => true,
        Stmt::If { then_, else_, .. } => stmts_contain_par2(then_) || stmts_contain_par2(else_),
        Stmt::While { body, .. } | Stmt::For { body, .. } => stmts_contain_par2(body),
        Stmt::ParFor(pf) => stmts_contain_par2(&pf.body),
        Stmt::ParForNested(n) => {
            stmts_contain_par2(&n.pre)
                || stmts_contain_par2(&n.inner_body)
                || stmts_contain_par2(&n.post)
        }
        _ => false,
    })
}

impl<'a> Cx<'a> {
    pub fn new(ir: &'a IrProgram, mode: Mode) -> Self {
        let has_par2 = ir.functions.iter().any(|f| stmts_contain_par2(&f.body));
        Cx {
            ir,
            mode,
            b: ProgramBuilder::new(),
            f: String::new(),
            fvars: Vec::new(),
            site: 0,
            forc: 0,
            fresh: 0,
            tdepth: 0,
            cur: None,
            has_par2,
            need_promote_rt: false,
            need_fret: false,
        }
    }

    // ----- names -----

    /// The register for variable `v` of the current function.
    pub fn vreg(&mut self, v: &str) -> Reg {
        let name = format!("{}.{v}", self.f);
        self.b.reg(&name)
    }

    /// The register for variable `v` of function `f`.
    pub fn vreg_of(&mut self, f: &str, v: &str) -> Reg {
        let name = format!("{f}.{v}");
        self.b.reg(&name)
    }

    /// A global (function-independent) register.
    pub fn greg(&mut self, name: &str) -> Reg {
        self.b.reg(name)
    }

    /// A per-site scratch register, registered as a saved variable of the
    /// enclosing function by the collection pass.
    pub fn sreg(&mut self, site: u32, which: &str) -> Reg {
        let name = format!("{}.%s{site}_{which}", self.f);
        self.b.reg(&name)
    }

    /// A transient handler/template register (never live across a call).
    pub fn treg(&mut self, name: &str) -> Reg {
        let name = format!("%{name}");
        self.b.reg(&name)
    }

    /// A fresh block name.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{}__{prefix}{}", self.f, self.fresh)
    }

    // ----- block emission -----

    /// Begins a new block (the previous one must have been finished).
    pub fn start(&mut self, name: &str) {
        self.start_annotated(name, Annotation::None);
    }

    /// Begins a new annotated block.
    pub fn start_annotated(&mut self, name: &str, ann: Annotation) {
        assert!(
            self.cur.is_none(),
            "block `{name}` started inside an open block"
        );
        self.cur = Some((name.to_owned(), ann, Vec::new()));
    }

    /// Appends an instruction to the open block.
    pub fn emit(&mut self, i: Instr) {
        self.cur.as_mut().expect("emit outside any block").2.push(i);
    }

    /// Ends the open block with an explicit terminator.
    pub fn finish(&mut self, terminator: Instr) {
        debug_assert!(terminator.is_terminator());
        let (name, ann, mut instrs) = self.cur.take().expect("finish outside any block");
        instrs.push(terminator);
        self.b.annotated_block(&name, ann, instrs);
    }

    /// Ends the open block by jumping to `target`.
    pub fn finish_jump(&mut self, target: &str) {
        let l = self.b.label(target);
        self.finish(Instr::Jump {
            target: Operand::Label(l),
        });
    }

    /// True when a block is open.
    pub fn in_block(&self) -> bool {
        self.cur.is_some()
    }

    // ----- small emission helpers -----

    pub fn mov(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.emit(Instr::Move {
            dst,
            src: src.into(),
        });
    }

    pub fn op(&mut self, dst: Reg, op: BinOp, lhs: Reg, rhs: impl Into<Operand>) {
        self.emit(Instr::Op {
            dst,
            op,
            lhs,
            rhs: rhs.into(),
        });
    }

    pub fn if_jump(&mut self, cond: Reg, target: &str) {
        let l = self.b.label(target);
        self.emit(Instr::IfJump {
            cond,
            target: Operand::Label(l),
        });
    }

    pub fn sstore(&mut self, base: Reg, offset: u32, src: impl Into<Operand>) {
        self.emit(Instr::Store {
            addr: MemAddr { base, offset },
            src: src.into(),
        });
    }

    pub fn sload(&mut self, dst: Reg, base: Reg, offset: u32) {
        self.emit(Instr::Load {
            dst,
            addr: MemAddr { base, offset },
        });
    }

    pub fn label_operand(&mut self, name: &str) -> Operand {
        Operand::Label(self.b.label(name))
    }

    // ----- expressions -----

    fn new_temp(&mut self) -> Reg {
        let name = format!("{}.%t{}", self.f, self.tdepth);
        self.tdepth += 1;
        self.b.reg(&name)
    }

    /// Evaluates `e` to an operand, emitting code for compound
    /// expressions into a fresh temp. The temp depth is restored by
    /// [`Cx::eval_into`]'s callers via save/restore.
    pub fn eval_operand(&mut self, e: &Expr) -> Operand {
        match e {
            Expr::Int(n) => Operand::Int(*n),
            Expr::Var(v) => Operand::Reg(self.vreg(v)),
            _ => {
                let t = self.new_temp();
                self.eval_into_raw(e, t);
                Operand::Reg(t)
            }
        }
    }

    /// Evaluates `e` to a register (materialising literals).
    pub fn eval_reg(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Var(v) => self.vreg(v),
            _ => {
                let t = self.new_temp();
                self.eval_into_raw(e, t);
                t
            }
        }
    }

    fn eval_into_raw(&mut self, e: &Expr, dst: Reg) {
        match e {
            Expr::Int(n) => self.mov(dst, *n),
            Expr::Var(v) => {
                let r = self.vreg(v);
                if r != dst {
                    self.mov(dst, r);
                }
            }
            Expr::Bin(op, l, r) => {
                let saved = self.tdepth;
                let lreg = self.eval_reg(l);
                let rop = self.eval_operand(r);
                self.op(dst, *op, lreg, rop);
                self.tdepth = saved;
            }
            Expr::Load { base, idx } => {
                let saved = self.tdepth;
                let breg = self.eval_reg(base);
                let iop = self.eval_operand(idx);
                self.emit(Instr::HLoad {
                    dst,
                    base: breg,
                    offset: iop,
                });
                self.tdepth = saved;
            }
        }
    }

    /// Evaluates `e` into `dst`, resetting the temp pool afterwards.
    pub fn eval_into(&mut self, e: &Expr, dst: Reg) {
        let saved = self.tdepth;
        self.eval_into_raw(e, dst);
        self.tdepth = saved;
    }

    /// Evaluates each expression into a fresh pinned temp (used for call
    /// arguments, which must all be computed before parameter registers
    /// are overwritten). Returns the temps; the caller resets the pool
    /// with [`Cx::reset_temps`].
    pub fn eval_all_pinned(&mut self, es: &[Expr]) -> Vec<Reg> {
        es.iter()
            .map(|e| {
                let t = self.new_temp();
                self.eval_into_raw(e, t);
                t
            })
            .collect()
    }

    pub fn reset_temps(&mut self) {
        self.tdepth = 0;
    }

    // ----- reducer helpers -----

    /// The shadow register of a reducer (`ΔR` target at joins).
    pub fn shadow(&mut self, r: &Reducer) -> Reg {
        let name = format!("{}.{}__2", self.f, r.var);
        self.b.reg(&name)
    }

    /// Builds the `ΔR` of a join continuation from reducer declarations.
    pub fn reducer_delta(&mut self, rs: &[Reducer]) -> RegMap {
        let mut m = RegMap::new();
        for r in rs {
            let src = self.vreg(&r.var);
            let dst = self.shadow(r);
            m = m.with(src, dst);
        }
        m
    }

    /// Emits the combining block body for reducers: `v := v op v__2`.
    pub fn emit_reducer_combine(&mut self, rs: &[Reducer]) {
        for r in rs.iter().cloned() {
            let v = self.vreg(&r.var);
            let s = self.shadow(&r);
            self.op(v, r.op, v, s);
        }
    }

    /// Parks reducers for a fork (child starts at the identity) into the
    /// given pinned temps, and returns the temps for restoration.
    pub fn park_reducers(&mut self, rs: &[Reducer]) -> Vec<Reg> {
        let mut temps = Vec::with_capacity(rs.len());
        for r in rs.iter().cloned() {
            let v = self.vreg(&r.var);
            let t = self.new_temp();
            self.mov(t, v);
            self.mov(v, r.identity);
            temps.push(t);
        }
        temps
    }

    /// Restores parked reducers after a fork.
    pub fn unpark_reducers(&mut self, rs: &[Reducer], temps: &[Reg]) {
        for (r, t) in rs.to_vec().iter().zip(temps) {
            let v = self.vreg(&r.var);
            self.mov(v, *t);
        }
    }

    // ----- jtppt continuation helper -----

    /// Defines a join continuation block pair: `cont` (annotated jtppt,
    /// jumping to `post`) and `comb` (combining reducers, rejoining
    /// `jr`).
    pub fn emit_join_cont(
        &mut self,
        cont: &str,
        comb: &str,
        delta: RegMap,
        reducers: &[Reducer],
        jr: Reg,
        post: &str,
    ) {
        let comb_l = self.b.label(comb);
        self.start_annotated(
            cont,
            Annotation::JoinTarget {
                policy: JoinPolicy::AssocComm,
                merge: delta,
                comb: comb_l,
            },
        );
        self.finish_jump(post);

        self.start(comb);
        self.emit_reducer_combine(reducers);
        self.finish(Instr::Join { jr });
    }

    // ----- the main wrapper and shared runtime blocks -----

    /// Emits the program entry wrapper: gives the initial task a stack
    /// and a root frame whose continuation stores the result and halts.
    pub fn emit_main_wrapper(&mut self, entry_fn: &str) {
        self.need_fret = true;
        let sp = self.greg(SP);
        let rv = self.greg(RV);
        let result = self.greg("result");
        self.start("__main");
        self.emit(Instr::SNew { dst: sp });
        self.mov(rv, 0);
        self.emit(Instr::SAlloc { sp, n: 1 });
        let done = self.label_operand("__done");
        self.sstore(sp, 0, done);
        self.finish_jump(&format!("{entry_fn}__entry"));

        self.start("__done");
        self.mov(result, rv);
        self.emit(Instr::SFree { sp, n: 1 });
        self.finish(Instr::Halt);
    }

    pub fn require_promotion_runtime(&mut self) {
        self.need_promote_rt = true;
    }

    pub fn require_fret(&mut self) {
        self.need_fret = true;
    }

    /// Emits the shared runtime blocks used across sites: the return
    /// trampoline `__fret`, the generic `__joink`, and the generic
    /// outermost-first promotion `__do_promote`.
    pub fn emit_runtime_blocks(&mut self) {
        let saved_f = std::mem::take(&mut self.f); // global names
        if self.need_fret {
            let t = self.treg("fret_t");
            let sp = self.greg(SP);
            self.start("__fret");
            self.sload(t, sp, F_CONT);
            self.finish(Instr::Jump {
                target: Operand::Reg(t),
            });
        }
        if self.need_promote_rt {
            let sp = self.greg(SP);
            let jr = self.treg("jr");
            // __joink: reached through a promoted frame's continuation
            // cell, or at the base of a child's fresh stack; reload the
            // record from the dead mark cell and join.
            self.start("__joink");
            self.sload(jr, sp, F_MARK);
            self.finish(Instr::Join { jr });

            // __do_promote: reify the oldest latent call (Appendix B.2).
            // `%abort` names the block to resume.
            let top = self.treg("top");
            let sp_top = self.greg(SP_TOP);
            let rc = self.treg("rc");
            let tce = self.treg("tce");
            let tsp = self.treg("tsp");
            let abort = self.greg(ABORT);
            let joink = self.label_operand("__joink");
            self.start("__do_promote");
            self.emit(Instr::PrmSplit { sp, dst: top });
            self.op(sp_top, BinOp::Add, sp, top);
            self.op(sp_top, BinOp::Sub, sp_top, 1);
            self.sload(rc, sp_top, F_RCONT);
            self.emit(Instr::JrAlloc {
                dst: jr,
                cont: Operand::Reg(rc),
            });
            self.sstore(sp_top, F_CONT, joink);
            self.sstore(sp_top, F_MARK, jr);
            self.sload(tce, sp_top, F_CENTRY);
            self.mov(tsp, sp);
            self.emit(Instr::SNew { dst: sp });
            self.emit(Instr::SAlloc { sp, n: 2 });
            self.sstore(sp, F_CONT, joink);
            self.sstore(sp, F_MARK, jr);
            self.emit(Instr::Fork {
                jr,
                target: Operand::Reg(tce),
            });
            self.mov(sp, tsp);
            self.finish(Instr::Jump {
                target: Operand::Reg(abort),
            });
        }
        self.f = saved_f;
    }

    /// Finalises the program. The entry is the `__main` wrapper (the
    /// first block emitted).
    pub fn into_program(self) -> Result<Program, tpal_core::program::ValidationError> {
        self.b.build()
    }

    // ----- function lowering -----

    pub fn lower_function(&mut self, f: &Function) -> Result<(), LowerError> {
        self.f = f.name.clone();
        self.fvars = collect_saved_vars(f, &mut SiteCounter::default());
        self.site = 0;
        self.forc = 0;
        self.fresh = 0;
        self.reset_temps();

        let entry_name = format!("{}__entry", f.name);
        let ann = if self.mode.is_heartbeat() && self.has_par2 {
            self.require_promotion_runtime();
            let h = format!("{}__hentry", f.name);
            let handler = self.b.label(&h);
            Annotation::PromotionReady { handler }
        } else {
            Annotation::None
        };
        self.start_annotated(&entry_name, ann.clone());

        // Zero-initialise every local (non-parameter) variable so that
        // save-all call frames never read an uninitialised register.
        for v in self.fvars.clone() {
            if !f.params.contains(&v) {
                let r = self.vreg(&v);
                self.mov(r, 0);
            }
        }

        self.lower_stmts(&f.body)?;

        // Implicit `return 0` when control falls off the end.
        if self.in_block() {
            let rv = self.greg(RV);
            self.mov(rv, 0);
            self.require_fret();
            self.finish_jump("__fret");
        }

        // The entry heartbeat handler: promote the oldest latent call if
        // one exists, then resume the function entry.
        if let Annotation::PromotionReady { .. } = ann {
            let sp = self.greg(SP);
            let e = self.treg("e");
            let abort = self.greg(ABORT);
            let h = format!("{}__hentry", f.name);
            self.start(&h);
            self.emit(Instr::PrmEmpty { dst: e, sp });
            self.if_jump(e, &entry_name); // empty (0 = true) → resume
            let entry_op = self.label_operand(&entry_name);
            self.mov(abort, entry_op);
            self.finish_jump("__do_promote");
        }
        Ok(())
    }
}

/// Deterministically assigns site and serial-for identifiers during
/// variable collection, mirroring the order the lowering pass visits the
/// statements.
#[derive(Default)]
pub(crate) struct SiteCounter {
    pub sites: u32,
    pub fors: u32,
}

/// Collects, in frame order, every register of `f` that call sites must
/// save: parameters, all assigned variables, loop variables, reducer
/// accumulators, and per-site scratch registers (loop bounds, join
/// records, ownership flags, grains).
pub(crate) fn collect_saved_vars(f: &Function, sites: &mut SiteCounter) -> Vec<String> {
    let mut vars: Vec<String> = Vec::new();
    let add = |v: &str, vars: &mut Vec<String>| {
        if !vars.iter().any(|x| x == v) {
            vars.push(v.to_owned());
        }
    };
    for p in &f.params {
        add(p, &mut vars);
    }

    fn scratch(site: u32, vars: &mut Vec<String>) {
        for which in ["hi", "jr", "own", "grain"] {
            let v = format!("%s{site}_{which}");
            if !vars.iter().any(|x| x == &v) {
                vars.push(v);
            }
        }
    }

    fn walk(stmts: &[Stmt], vars: &mut Vec<String>, sites: &mut SiteCounter) {
        let add = |v: &str, vars: &mut Vec<String>| {
            if !vars.iter().any(|x| x == v) {
                vars.push(v.to_owned());
            }
        };
        for s in stmts {
            match s {
                Stmt::Assign(v, _) | Stmt::Alloc { var: v, .. } => add(v, vars),
                Stmt::Store { .. } | Stmt::Return(_) => {}
                Stmt::If { then_, else_, .. } => {
                    walk(then_, vars, sites);
                    walk(else_, vars, sites);
                }
                Stmt::While { body, .. } => walk(body, vars, sites),
                Stmt::For { var, body, .. } => {
                    add(var, vars);
                    add(&format!("%for{}_hi", sites.fors), vars);
                    sites.fors += 1;
                    walk(body, vars, sites);
                }
                Stmt::Call { ret, .. } => {
                    if let Some(r) = ret {
                        add(r, vars);
                    }
                }
                Stmt::Par2 { left, right } => {
                    add(&left.ret, vars);
                    add(&right.ret, vars);
                    scratch(sites.sites, vars);
                    sites.sites += 1;
                }
                Stmt::ParFor(pf) => {
                    add(&pf.var, vars);
                    for r in &pf.reducers {
                        add(&r.var, vars);
                    }
                    scratch(sites.sites, vars);
                    sites.sites += 1;
                    walk(&pf.body, vars, sites);
                }
                Stmt::ParForNested(n) => {
                    add(&n.outer_var, vars);
                    add(&n.inner_var, vars);
                    for r in n.outer_reducers.iter().chain(&n.inner_reducers) {
                        add(&r.var, vars);
                    }
                    scratch(sites.sites, vars);
                    scratch(sites.sites + 1, vars);
                    sites.sites += 2;
                    walk(&n.pre, vars, sites);
                    walk(&n.inner_body, vars, sites);
                    walk(&n.post, vars, sites);
                }
            }
        }
    }
    walk(&f.body, &mut vars, sites);
    vars
}
