//! A textual frontend for the task-parallel IR.
//!
//! The surface syntax is a small C-like language with the parallel
//! constructs of the IR (the "Cilk Plus level" the paper compiles from,
//! §3.1):
//!
//! ```text
//! fn fib(n) {
//!     if n < 2 { return n; }
//!     par {
//!         f1 = fib(n - 1);
//!         f2 = fib(n - 2);
//!     }
//!     return f1 + f2;
//! }
//! ```
//!
//! Statements: assignment `x = e;`, heap store `a[i] = e;`, allocation
//! `x = alloc(n);`, `if e { … } else { … }`, `while e { … }`,
//! `for i in a..b { … }`, `parfor i in a..b reduce(s: +, 0) { … }`,
//! `par { l = f(…); r = g(…); }` (exactly two calls), serial calls
//! `x = f(…);` / `f(…);`, and `return e;`.
//!
//! A `parfor` whose body contains exactly one inner `parfor` desugars to
//! the outer-loop-first [`ParForNested`](crate::ast::ParForNested): the
//! statements before the inner loop become the prologue, those after it
//! the epilogue.
//!
//! Expressions: integer literals, variables, `a[i]` loads, unary `-`
//! and `!`, binary `* / % + - << >> < <= > >= == != & ^ | && ||`,
//! `min(a, b)` / `max(a, b)`, and parentheses. Comparisons and logical
//! operators follow the TPAL truth encoding (0 = true) — `&&`/`||`/`!`
//! expect exact 0/1 truth values, which comparisons produce.

use std::fmt;

use tpal_core::isa::BinOp;

use crate::ast::{CallSpec, Expr, Function, IrProgram, ParFor, ParForNested, Reducer, Stmt};

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line (0 at end of input).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for FrontendError {}

// ----- lexer -----

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    DotDot,
    Assign,
    Bang,
    Op(BinOp),
    AndAnd,
    OrOr,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::DotDot => f.write_str("`..`"),
            Tok::Assign => f.write_str("`=`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Op(op) => write!(f, "`{op}`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
        }
    }
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, FrontendError> {
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut it = src.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            '\n' => {
                line += 1;
                it.next();
            }
            c if c.is_whitespace() => {
                it.next();
            }
            '/' => {
                it.next();
                if it.peek() == Some(&'/') {
                    for c in it.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push((Tok::Op(BinOp::Div), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = it.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            c if c.is_ascii_digit() => {
                let mut n = 0i64;
                while let Some(&c) = it.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.wrapping_mul(10).wrapping_add(d as i64);
                        it.next();
                    } else if c == '_' {
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Int(n), line));
            }
            _ => {
                it.next();
                let two = |it: &mut std::iter::Peekable<std::str::Chars<'_>>, n: char| {
                    if it.peek() == Some(&n) {
                        it.next();
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '+' => Tok::Op(BinOp::Add),
                    '-' => Tok::Op(BinOp::Sub),
                    '*' => Tok::Op(BinOp::Mul),
                    '%' => Tok::Op(BinOp::Mod),
                    '^' => Tok::Op(BinOp::Xor),
                    '.' => {
                        if two(&mut it, '.') {
                            Tok::DotDot
                        } else {
                            return Err(FrontendError {
                                line,
                                msg: "expected `..`".into(),
                            });
                        }
                    }
                    '=' => {
                        if two(&mut it, '=') {
                            Tok::Op(BinOp::EqOp)
                        } else {
                            Tok::Assign
                        }
                    }
                    '!' => {
                        if two(&mut it, '=') {
                            Tok::Op(BinOp::Ne)
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut it, '=') {
                            Tok::Op(BinOp::Le)
                        } else if two(&mut it, '<') {
                            Tok::Op(BinOp::Shl)
                        } else {
                            Tok::Op(BinOp::Lt)
                        }
                    }
                    '>' => {
                        if two(&mut it, '=') {
                            Tok::Op(BinOp::Ge)
                        } else if two(&mut it, '>') {
                            Tok::Op(BinOp::Shr)
                        } else {
                            Tok::Op(BinOp::Gt)
                        }
                    }
                    '&' => {
                        if two(&mut it, '&') {
                            Tok::AndAnd
                        } else {
                            Tok::Op(BinOp::And)
                        }
                    }
                    '|' => {
                        if two(&mut it, '|') {
                            Tok::OrOr
                        } else {
                            Tok::Op(BinOp::Or)
                        }
                    }
                    other => {
                        return Err(FrontendError {
                            line,
                            msg: format!("unexpected character `{other}`"),
                        })
                    }
                };
                out.push((tok, line));
            }
        }
    }
    Ok(out)
}

// ----- parser -----

struct P {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl P {
    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.1)
            .unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.0.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), FrontendError> {
        if self.eat(t) {
            Ok(())
        } else {
            let found = self
                .peek()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "end of input".into());
            Err(self.err(format!("expected {t}, found {found}")))
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(FrontendError {
                line,
                msg: format!(
                    "expected identifier, found {}",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "end of input".into())
                ),
            }),
        }
    }

    // Precedence climbing. Levels, loosest first:
    // || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / %
    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary(0)
    }

    fn binary(&mut self, level: usize) -> Result<Expr, FrontendError> {
        const LEVELS: usize = 10;
        if level == LEVELS {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let tok = self.peek().cloned();
            let op: Option<BinOp> = match (level, tok) {
                // Logical operators over exact 0/1 truth values under the
                // 0-is-true encoding: AND is bitwise-or, OR is
                // bitwise-and (see the module docs).
                (0, Some(Tok::OrOr)) => Some(BinOp::And),
                (1, Some(Tok::AndAnd)) => Some(BinOp::Or),
                (2, Some(Tok::Op(BinOp::Or))) => Some(BinOp::Or),
                (3, Some(Tok::Op(BinOp::Xor))) => Some(BinOp::Xor),
                (4, Some(Tok::Op(BinOp::And))) => Some(BinOp::And),
                (5, Some(Tok::Op(op @ (BinOp::EqOp | BinOp::Ne)))) => Some(op),
                (6, Some(Tok::Op(op @ (BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)))) => {
                    Some(op)
                }
                (7, Some(Tok::Op(op @ (BinOp::Shl | BinOp::Shr)))) => Some(op),
                (8, Some(Tok::Op(op @ (BinOp::Add | BinOp::Sub)))) => Some(op),
                (9, Some(Tok::Op(op @ (BinOp::Mul | BinOp::Div | BinOp::Mod)))) => Some(op),
                _ => None,
            };
            match op {
                Some(op) => {
                    self.pos += 1;
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::bin(op, lhs, rhs);
                }
                None => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        if self.eat(&Tok::Bang) {
            return Ok(self.unary()?.not());
        }
        if self.eat(&Tok::Op(BinOp::Sub)) {
            // Constant-fold negative literals; otherwise 0 - e.
            if let Some(Tok::Int(n)) = self.peek() {
                let n = *n;
                self.pos += 1;
                return self.postfix(Expr::int(n.wrapping_neg()));
            }
            let e = self.unary()?;
            return Ok(Expr::bin(BinOp::Sub, Expr::int(0), e));
        }
        let line = self.line();
        let base = match self.next() {
            Some(Tok::Int(n)) => Expr::int(n),
            Some(Tok::Ident(name)) => match name.as_str() {
                "min" | "max" => {
                    let op = if name == "min" {
                        BinOp::Min
                    } else {
                        BinOp::Max
                    };
                    self.expect(&Tok::LParen)?;
                    let a = self.expr()?;
                    self.expect(&Tok::Comma)?;
                    let b = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    Expr::bin(op, a, b)
                }
                _ => {
                    if self.peek() == Some(&Tok::LParen) {
                        return Err(self.err(format!(
                            "calls are statements in this language; assign `x = {name}(…);` \
                             instead of nesting the call in an expression"
                        )));
                    }
                    Expr::var(name)
                }
            },
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                e
            }
            other => {
                return Err(FrontendError {
                    line,
                    msg: format!(
                        "expected expression, found {}",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "end of input".into())
                    ),
                })
            }
        };
        self.postfix(base)
    }

    fn postfix(&mut self, mut e: Expr) -> Result<Expr, FrontendError> {
        while self.eat(&Tok::LBracket) {
            let idx = self.expr()?;
            self.expect(&Tok::RBracket)?;
            e = e.load(idx);
        }
        Ok(e)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unclosed `{`"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, FrontendError> {
        self.expect(&Tok::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        Ok(args)
    }

    /// `ret = callee(args…);` — the body of `par { … }` arms.
    fn call_spec(&mut self) -> Result<CallSpec, FrontendError> {
        let ret = self.ident()?;
        self.expect(&Tok::Assign)?;
        let callee = self.ident()?;
        let args = self.call_args()?;
        self.expect(&Tok::Semi)?;
        Ok(CallSpec::new(callee, args, ret))
    }

    fn reducers(&mut self) -> Result<Vec<Reducer>, FrontendError> {
        let mut rs = Vec::new();
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "reduce") {
            self.pos += 1;
            self.expect(&Tok::LParen)?;
            loop {
                let var = self.ident()?;
                self.expect(&Tok::Colon)?;
                let op = match self.next() {
                    Some(Tok::Op(
                        op @ (BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor),
                    )) => op,
                    Some(Tok::Ident(s)) if s == "min" => BinOp::Min,
                    Some(Tok::Ident(s)) if s == "max" => BinOp::Max,
                    other => {
                        return Err(self.err(format!(
                            "expected a reducer operator (+ * & | ^ min max), found {}",
                            other
                                .map(|t| t.to_string())
                                .unwrap_or_else(|| "end of input".into())
                        )))
                    }
                };
                self.expect(&Tok::Comma)?;
                let identity = match self.next() {
                    Some(Tok::Int(n)) => n,
                    Some(Tok::Op(BinOp::Sub)) => match self.next() {
                        Some(Tok::Int(n)) => n.wrapping_neg(),
                        _ => return Err(self.err("expected integer identity")),
                    },
                    _ => return Err(self.err("expected integer identity")),
                };
                rs.push(Reducer::new(var, op, identity));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        Ok(rs)
    }

    fn parfor(&mut self) -> Result<Stmt, FrontendError> {
        let var = self.ident()?;
        let kw = self.ident()?;
        if kw != "in" {
            return Err(self.err(format!("expected `in`, found `{kw}`")));
        }
        let from = self.expr()?;
        self.expect(&Tok::DotDot)?;
        let to = self.expr()?;
        let reducers = self.reducers()?;
        let body = self.block()?;

        // Desugar a body containing exactly one inner parfor into the
        // outer-loop-first nest.
        let inner_at = body.iter().position(|s| matches!(s, Stmt::ParFor(_)));
        if let Some(i) = inner_at {
            if body
                .iter()
                .skip(i + 1)
                .any(|s| matches!(s, Stmt::ParFor(_)))
            {
                return Err(
                    self.err("at most one inner parfor per parfor body (use a callee for more)")
                );
            }
            let mut body = body;
            let post = body.split_off(i + 1);
            let inner = match body.pop() {
                Some(Stmt::ParFor(p)) => p,
                _ => unreachable!("position() found a parfor"),
            };
            let pre = body;
            return Ok(Stmt::ParForNested(Box::new(ParForNested {
                outer_var: var,
                outer_from: from,
                outer_to: to,
                pre,
                inner_var: inner.var,
                inner_from: inner.from,
                inner_to: inner.to,
                inner_body: inner.body,
                inner_reducers: inner.reducers,
                post,
                outer_reducers: reducers,
            })));
        }
        Ok(Stmt::ParFor(ParFor {
            var,
            from,
            to,
            body,
            reducers,
        }))
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let kw = match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            _ => return Err(self.err("expected a statement")),
        };
        match kw.as_str() {
            "return" => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e))
            }
            "if" => {
                self.pos += 1;
                let cond = self.expr()?;
                let then_ = self.block()?;
                let else_ = if matches!(self.peek(), Some(Tok::Ident(s)) if s == "else") {
                    self.pos += 1;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then_, else_ })
            }
            "while" => {
                self.pos += 1;
                let cond = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            "for" => {
                self.pos += 1;
                let var = self.ident()?;
                let kw = self.ident()?;
                if kw != "in" {
                    return Err(self.err(format!("expected `in`, found `{kw}`")));
                }
                let from = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let to = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    from,
                    to,
                    body,
                })
            }
            "parfor" => {
                self.pos += 1;
                self.parfor()
            }
            "par" => {
                self.pos += 1;
                self.expect(&Tok::LBrace)?;
                let left = self.call_spec()?;
                let right = self.call_spec()?;
                self.expect(&Tok::RBrace)?;
                Ok(Stmt::Par2 { left, right })
            }
            _ => {
                // Assignment, store, alloc, or a bare call.
                let name = self.ident()?;
                match self.peek() {
                    Some(Tok::LParen) => {
                        // Bare call: f(args);
                        let args = self.call_args()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Call {
                            func: name,
                            args,
                            ret: None,
                        })
                    }
                    Some(Tok::LBracket) => {
                        // Store: name[idx] = e;
                        self.pos += 1;
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        self.expect(&Tok::Assign)?;
                        let val = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Store {
                            base: Expr::var(name),
                            idx,
                            val,
                        })
                    }
                    Some(Tok::Assign) => {
                        self.pos += 1;
                        // alloc / call / expression.
                        if let Some(Tok::Ident(rhs)) = self.peek() {
                            let rhs = rhs.clone();
                            let is_call = self.toks.get(self.pos + 1).map(|t| &t.0)
                                == Some(&Tok::LParen)
                                && rhs != "min"
                                && rhs != "max";
                            if rhs == "alloc" && is_call {
                                self.pos += 1;
                                self.expect(&Tok::LParen)?;
                                let size = self.expr()?;
                                self.expect(&Tok::RParen)?;
                                self.expect(&Tok::Semi)?;
                                return Ok(Stmt::Alloc { var: name, size });
                            }
                            if is_call {
                                self.pos += 1;
                                let args = self.call_args()?;
                                self.expect(&Tok::Semi)?;
                                return Ok(Stmt::Call {
                                    func: rhs,
                                    args,
                                    ret: Some(name),
                                });
                            }
                        }
                        let e = self.expr()?;
                        self.expect(&Tok::Semi)?;
                        Ok(Stmt::Assign(name, e))
                    }
                    other => Err(self.err(format!(
                        "expected `=`, `[`, or `(` after `{name}`, found {}",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "end of input".into())
                    ))),
                }
            }
        }
    }

    fn function(&mut self) -> Result<Function, FrontendError> {
        let kw = self.ident()?;
        if kw != "fn" {
            return Err(self.err(format!("expected `fn`, found `{kw}`")));
        }
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, params, body })
    }
}

/// Parses a program in the surface syntax. The **first** function is the
/// entry point.
///
/// # Errors
///
/// Returns a [`FrontendError`] on lexical or syntactic faults (semantic
/// checks — unknown callees, arity, parallel nesting rules — are
/// reported by [`lower`](crate::lower::lower)).
pub fn parse_ir(src: &str) -> Result<IrProgram, FrontendError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut functions = Vec::new();
    while p.peek().is_some() {
        functions.push(p.function()?);
    }
    let entry = functions
        .first()
        .map(|f| f.name.clone())
        .ok_or(FrontendError {
            line: 0,
            msg: "no functions defined".into(),
        })?;
    Ok(IrProgram { functions, entry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower, Mode};
    use tpal_core::machine::{Machine, MachineConfig};

    fn run(src: &str, ints: &[(&str, i64)], mode: Mode, hb: u64) -> i64 {
        let ir = parse_ir(src).unwrap_or_else(|e| panic!("parse: {e}"));
        let lowered = lower(&ir, mode).unwrap_or_else(|e| panic!("lower: {e}"));
        let mut m = Machine::new(
            &lowered.program,
            MachineConfig::default().with_heartbeat(hb),
        );
        for (k, v) in ints {
            m.set_reg(&lowered.param_reg(k), *v).unwrap();
        }
        m.run()
            .unwrap_or_else(|e| panic!("run: {e}"))
            .read_reg(&lowered.result_reg)
            .expect("result")
    }

    #[test]
    fn arithmetic_and_precedence() {
        let src = "fn main(x) { return 1 + 2 * x - 6 / 3; }";
        assert_eq!(run(src, &[("x", 10)], Mode::Serial, u64::MAX), 19);
    }

    #[test]
    fn comparisons_and_logic() {
        // (x < 10 && x > 2) under 0-is-true; returned as-is.
        let src = "fn main(x) { if x < 10 && x > 2 { return 1; } return 0; }";
        assert_eq!(run(src, &[("x", 5)], Mode::Serial, u64::MAX), 1);
        assert_eq!(run(src, &[("x", 1)], Mode::Serial, u64::MAX), 0);
        let src = "fn main(x) { if x < 0 || x > 10 { return 1; } return 0; }";
        assert_eq!(run(src, &[("x", 20)], Mode::Serial, u64::MAX), 1);
        assert_eq!(run(src, &[("x", 5)], Mode::Serial, u64::MAX), 0);
        let src = "fn main(x) { if !(x == 3) { return 1; } return 0; }";
        assert_eq!(run(src, &[("x", 3)], Mode::Serial, u64::MAX), 0);
    }

    #[test]
    fn loops_and_heap() {
        let src = r#"
fn main(n) {
    a = alloc(n);
    for i in 0..n { a[i] = i * i; }
    s = 0;
    i = 0;
    while i < n { s = s + a[i]; i = i + 1; }
    return s;
}
"#;
        assert_eq!(run(src, &[("n", 10)], Mode::Serial, u64::MAX), 285);
    }

    #[test]
    fn parfor_with_reducer() {
        let src = r#"
fn main(n) {
    s = 0;
    parfor i in 0..n reduce(s: +, 0) { s = s + i; }
    return s;
}
"#;
        for mode in [Mode::Serial, Mode::Heartbeat, Mode::Eager { workers: 3 }] {
            assert_eq!(run(src, &[("n", 1000)], mode, 70), 499_500, "{mode:?}");
        }
    }

    #[test]
    fn par_fib() {
        let src = r#"
fn fib(n) {
    if n < 2 { return n; }
    par {
        f1 = fib(n - 1);
        f2 = fib(n - 2);
    }
    return f1 + f2;
}
"#;
        for mode in [Mode::Serial, Mode::Heartbeat, Mode::Eager { workers: 3 }] {
            assert_eq!(run(src, &[("n", 15)], mode, 60), 610, "{mode:?}");
        }
    }

    #[test]
    fn nested_parfor_desugars() {
        let src = r#"
fn main(n) {
    total = 0;
    parfor i in 0..n reduce(total: +, 0) {
        rowsum = 0;
        parfor j in 0..n reduce(rowsum: +, 0) {
            rowsum = rowsum + i * j;
        }
        total = total + rowsum;
    }
    return total;
}
"#;
        let ir = parse_ir(src).unwrap();
        // Confirm the desugaring chose the nest form.
        assert!(matches!(
            ir.functions[0].body[1],
            crate::ast::Stmt::ParForNested(_)
        ));
        let expected: i64 = (0..20).map(|i| (0..20).map(|j| i * j).sum::<i64>()).sum();
        for mode in [Mode::Serial, Mode::Heartbeat] {
            assert_eq!(run(src, &[("n", 20)], mode, 90), expected, "{mode:?}");
        }
    }

    #[test]
    fn min_max_and_unary() {
        let src = "fn main(x) { return min(x, 3) + max(x, 3) + -x; }";
        assert_eq!(run(src, &[("x", 7)], Mode::Serial, u64::MAX), 3 + 7 - 7);
    }

    #[test]
    fn errors_are_located() {
        let e = parse_ir("fn main() {\n  x = ;\n}").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_ir("fn main() { return f(1) + 2; }").unwrap_err();
        assert!(e.msg.contains("calls are statements"), "{e}");
        let e = parse_ir("").unwrap_err();
        assert!(e.msg.contains("no functions"), "{e}");
    }

    #[test]
    fn bare_and_assigned_calls() {
        let src = r#"
fn main(x) {
    helper(x);
    y = helper(x);
    return y;
}
fn helper(a) { return a * 2; }
"#;
        assert_eq!(run(src, &[("x", 21)], Mode::Serial, u64::MAX), 42);
    }
}
