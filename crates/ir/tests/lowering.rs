//! End-to-end tests of the IR lowering: every program is lowered in all
//! three modes and executed on the reference machine under several
//! heartbeat settings and schedules; all must agree with the expected
//! result.

use tpal_core::isa::BinOp;
use tpal_core::machine::{ExecStats, Machine, MachineConfig, SchedulePolicy};
use tpal_ir::ast::{CallSpec, Expr, Function, IrProgram, ParFor, ParForNested, Reducer, Stmt};
use tpal_ir::lower::{lower, Lowered, Mode};

fn v(s: &str) -> Expr {
    Expr::var(s)
}

fn i(n: i64) -> Expr {
    Expr::int(n)
}

/// Runs a lowered program with integer inputs and (optionally) one input
/// array; returns the result register and stats.
fn run_with(
    lowered: &Lowered,
    config: MachineConfig,
    ints: &[(&str, i64)],
    arrays: &[(&str, &[i64])],
) -> (i64, ExecStats, Vec<i64>) {
    let mut m = Machine::new(&lowered.program, config);
    let mut bases = Vec::new();
    for (p, data) in arrays {
        let base = m.alloc_array(data);
        bases.push((base, data.len()));
        m.set_reg(&lowered.param_reg(p), base).unwrap();
    }
    for (p, n) in ints {
        m.set_reg(&lowered.param_reg(p), *n).unwrap();
    }
    let out = m.run().unwrap_or_else(|e| panic!("machine error: {e}"));
    let result = out
        .read_reg(&lowered.result_reg)
        .expect("result register set");
    let heap0 = bases
        .first()
        .map(|&(b, l)| m.heap().slice(b, l).unwrap().to_vec())
        .unwrap_or_default();
    (result, out.stats, heap0)
}

/// Checks a program against an expected result in every mode, heartbeat
/// setting, and schedule; returns heartbeat-mode stats at the smallest ♥.
fn check_all_modes(
    ir: &IrProgram,
    ints: &[(&str, i64)],
    arrays: &[(&str, &[i64])],
    expected: i64,
) -> ExecStats {
    let serial = lower(ir, Mode::Serial).expect("serial lowering");
    let (r, s, _) = run_with(&serial, MachineConfig::serial(), ints, arrays);
    assert_eq!(r, expected, "serial mode");
    assert_eq!(s.forks, 0, "serial mode must not fork");

    let eager = lower(ir, Mode::Eager { workers: 4 }).expect("eager lowering");
    for policy in [
        SchedulePolicy::ParentFirst,
        SchedulePolicy::Random {
            seed: 9,
            quantum: 13,
        },
    ] {
        let (r, _, _) = run_with(
            &eager,
            MachineConfig::serial().with_policy(policy),
            ints,
            arrays,
        );
        assert_eq!(r, expected, "eager mode {policy:?}");
    }

    let hbx = lower(ir, Mode::HeartbeatExpanded).expect("expanded lowering");
    for heartbeat in [60, u64::MAX] {
        let (r, s, _) = run_with(
            &hbx,
            MachineConfig::default().with_heartbeat(heartbeat),
            ints,
            arrays,
        );
        assert_eq!(r, expected, "expanded heartbeat ♥={heartbeat}");
        if heartbeat == u64::MAX {
            assert_eq!(s.forks, 0, "expanded serial path must not fork");
        }
    }

    let hb = lower(ir, Mode::Heartbeat).expect("heartbeat lowering");
    let mut min_stats = None;
    for heartbeat in [60, 301, u64::MAX] {
        for policy in [
            SchedulePolicy::ParentFirst,
            SchedulePolicy::ChildFirst,
            SchedulePolicy::Random {
                seed: 3,
                quantum: 17,
            },
        ] {
            let (r, s, _) = run_with(
                &hb,
                MachineConfig::default()
                    .with_heartbeat(heartbeat)
                    .with_policy(policy),
                ints,
                arrays,
            );
            assert_eq!(r, expected, "heartbeat mode ♥={heartbeat} {policy:?}");
            if heartbeat == 60 && min_stats.is_none() {
                min_stats = Some(s);
            }
        }
    }
    min_stats.unwrap()
}

#[test]
fn straightline_arithmetic() {
    let f = Function::new("main", ["x"])
        .stmt(Stmt::assign("y", v("x").mul(i(3)).add(i(4))))
        .stmt(Stmt::Return(v("y").sub(i(1))));
    let ir = IrProgram::new("main").function(f);
    check_all_modes(&ir, &[("x", 10)], &[], 33);
}

#[test]
fn if_else_and_while() {
    // Collatz step count for n = 27 is 111.
    let f = Function::new("main", ["n"])
        .stmt(Stmt::assign("c", i(0)))
        .stmt(Stmt::While {
            cond: v("n").ne(i(1)),
            body: vec![
                Stmt::if_else(
                    v("n").rem(i(2)).eq_(i(0)),
                    vec![Stmt::assign("n", v("n").div(i(2)))],
                    vec![Stmt::assign("n", v("n").mul(i(3)).add(i(1)))],
                ),
                Stmt::assign("c", v("c").add(i(1))),
            ],
        })
        .stmt(Stmt::Return(v("c")));
    let ir = IrProgram::new("main").function(f);
    check_all_modes(&ir, &[("n", 27)], &[], 111);
}

#[test]
fn serial_calls_and_recursion() {
    // fact(10) via serial recursion.
    let fact = Function::new("fact", ["n"])
        .stmt(Stmt::if_(v("n").le(i(1)), vec![Stmt::Return(i(1))]))
        .stmt(Stmt::call("fact", vec![v("n").sub(i(1))], Some("r")))
        .stmt(Stmt::Return(v("n").mul(v("r"))));
    let main = Function::new("main", ["n"])
        .stmt(Stmt::call("fact", vec![v("n")], Some("out")))
        .stmt(Stmt::Return(v("out")));
    let ir = IrProgram::new("main").function(main).function(fact);
    check_all_modes(&ir, &[("n", 10)], &[], 3_628_800);
}

#[test]
fn heap_alloc_load_store() {
    let f = Function::new("main", ["n"])
        .stmt(Stmt::Alloc {
            var: "a".into(),
            size: v("n"),
        })
        .stmt(Stmt::for_(
            "i",
            i(0),
            v("n"),
            vec![Stmt::store(v("a"), v("i"), v("i").mul(v("i")))],
        ))
        .stmt(Stmt::assign("s", i(0)))
        .stmt(Stmt::for_(
            "i",
            i(0),
            v("n"),
            vec![Stmt::assign("s", v("s").add(v("a").load(v("i"))))],
        ))
        .stmt(Stmt::Return(v("s")));
    let ir = IrProgram::new("main").function(f);
    // Σ i² for i<10 = 285
    check_all_modes(&ir, &[("n", 10)], &[], 285);
}

fn fib_ir() -> IrProgram {
    let fib = Function::new("fib", ["n"])
        .stmt(Stmt::if_(v("n").lt(i(2)), vec![Stmt::Return(v("n"))]))
        .stmt(Stmt::Par2 {
            left: CallSpec::new("fib", vec![v("n").sub(i(1))], "f1"),
            right: CallSpec::new("fib", vec![v("n").sub(i(2))], "f2"),
        })
        .stmt(Stmt::Return(v("f1").add(v("f2"))));
    IrProgram::new("fib").function(fib)
}

#[test]
fn par2_fib() {
    let stats = check_all_modes(&fib_ir(), &[("n", 15)], &[], 610);
    assert!(stats.forks > 0, "heartbeat fib should promote: {stats:?}");
}

#[test]
fn par2_eager_forks_per_spawn() {
    let eager = lower(&fib_ir(), Mode::Eager { workers: 4 }).unwrap();
    let (r, s, _) = run_with(&eager, MachineConfig::serial(), &[("n", 12)], &[]);
    assert_eq!(r, 144);
    // Eager mode forks once per internal call-tree node.
    assert!(s.forks > 80, "expected a fork per spawn, got {}", s.forks);
}

#[test]
fn par2_heartbeat_serial_path_zero_forks() {
    let hb = lower(&fib_ir(), Mode::Heartbeat).unwrap();
    let (r, s, _) = run_with(
        &hb,
        MachineConfig::serial(), // ♥ = ∞
        &[("n", 12)],
        &[],
    );
    assert_eq!(r, 144);
    assert_eq!(s.forks, 0, "no heartbeat → no promotion");
}

#[test]
fn parfor_sum_reduction() {
    let f = Function::new("main", ["a", "n"])
        .stmt(Stmt::assign("s", i(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("i", i(0), v("n"))
                .body(vec![Stmt::assign("s", v("s").add(v("a").load(v("i"))))])
                .reducer(Reducer::new("s", BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(v("s")));
    let ir = IrProgram::new("main").function(f);
    let data: Vec<i64> = (1..=500).collect();
    let stats = check_all_modes(&ir, &[("n", 500)], &[("a", &data)], 500 * 501 / 2);
    assert!(stats.forks > 0, "500 iterations at ♥=60 should promote");
}

#[test]
fn parfor_writes_disjoint_heap() {
    // out[i] = 2*in[i]; verified through a second serial sum.
    let f = Function::new("main", ["a", "n"])
        .stmt(Stmt::Alloc {
            var: "out".into(),
            size: v("n"),
        })
        .stmt(Stmt::ParFor(ParFor::new("i", i(0), v("n")).body(vec![
            Stmt::store(v("out"), v("i"), v("a").load(v("i")).mul(i(2))),
        ])))
        .stmt(Stmt::assign("s", i(0)))
        .stmt(Stmt::for_(
            "j",
            i(0),
            v("n"),
            vec![Stmt::assign("s", v("s").add(v("out").load(v("j"))))],
        ))
        .stmt(Stmt::Return(v("s")));
    let ir = IrProgram::new("main").function(f);
    let data: Vec<i64> = (0..300).collect();
    check_all_modes(&ir, &[("n", 300)], &[("a", &data)], 2 * 299 * 300 / 2);
}

#[test]
fn parfor_min_max_reducers() {
    let f = Function::new("main", ["a", "n"])
        .stmt(Stmt::assign("lo", i(i64::MAX)))
        .stmt(Stmt::assign("hi", i(i64::MIN)))
        .stmt(Stmt::ParFor(
            ParFor::new("i", i(0), v("n"))
                .body(vec![
                    Stmt::assign("lo", v("lo").min(v("a").load(v("i")))),
                    Stmt::assign("hi", v("hi").max(v("a").load(v("i")))),
                ])
                .reducer(Reducer::new("lo", BinOp::Min, i64::MAX))
                .reducer(Reducer::new("hi", BinOp::Max, i64::MIN)),
        ))
        .stmt(Stmt::Return(v("hi").sub(v("lo"))));
    let ir = IrProgram::new("main").function(f);
    let data: Vec<i64> = (0..400).map(|x| (x * 37) % 1000 - 200).collect();
    let lo = *data.iter().min().unwrap();
    let hi = *data.iter().max().unwrap();
    check_all_modes(&ir, &[("n", 400)], &[("a", &data)], hi - lo);
}

#[test]
fn nested_parfor_matrix_row_sums() {
    // total = Σ_rows (Σ_cols m[r*c + j]) — a ParForNested with an inner
    // reduction feeding an outer reduction through the epilogue.
    let n = ParForNested {
        outer_var: "r".into(),
        outer_from: i(0),
        outer_to: v("rows"),
        pre: vec![
            Stmt::assign("rowsum", i(0)),
            Stmt::assign("base", v("r").mul(v("cols"))),
        ],
        inner_var: "j".into(),
        inner_from: i(0),
        inner_to: v("cols"),
        inner_body: vec![Stmt::assign(
            "rowsum",
            v("rowsum").add(v("m").load(v("base").add(v("j")))),
        )],
        inner_reducers: vec![Reducer::new("rowsum", BinOp::Add, 0)],
        post: vec![Stmt::assign("total", v("total").add(v("rowsum")))],
        outer_reducers: vec![Reducer::new("total", BinOp::Add, 0)],
    };
    let f = Function::new("main", ["m", "rows", "cols"])
        .stmt(Stmt::assign("total", i(0)))
        .stmt(Stmt::ParForNested(Box::new(n)))
        .stmt(Stmt::Return(v("total")));
    let ir = IrProgram::new("main").function(f);
    let (rows, cols) = (20i64, 30i64);
    let data: Vec<i64> = (0..rows * cols).collect();
    let expected: i64 = data.iter().sum();
    let stats = check_all_modes(
        &ir,
        &[("rows", rows), ("cols", cols)],
        &[("m", &data)],
        expected,
    );
    assert!(stats.forks > 0);
}

#[test]
fn parfor_inside_par2_function() {
    // Recursion whose leaves run a parallel loop: the shape of mergesort.
    // work(d, a, n): if d == 0 { parfor i: s += a[i]; return s }
    //               else { Par2(work(d-1), work(d-1)); return l + r }
    let work = Function::new("work", ["d", "a", "n"])
        .stmt(Stmt::if_(
            v("d").eq_(i(0)),
            vec![
                Stmt::assign("s", i(0)),
                Stmt::ParFor(
                    ParFor::new("i", i(0), v("n"))
                        .body(vec![Stmt::assign("s", v("s").add(v("a").load(v("i"))))])
                        .reducer(Reducer::new("s", BinOp::Add, 0)),
                ),
                Stmt::Return(v("s")),
            ],
        ))
        .stmt(Stmt::Par2 {
            left: CallSpec::new("work", vec![v("d").sub(i(1)), v("a"), v("n")], "l"),
            right: CallSpec::new("work", vec![v("d").sub(i(1)), v("a"), v("n")], "r"),
        })
        // Read a parameter after the Par2: the caller's own `d` must
        // survive both calls (regression test for the eager-mode
        // frame/parameter ordering bug).
        .stmt(Stmt::Return(v("l").add(v("r")).add(v("d")).sub(v("d"))));
    let ir = IrProgram::new("work").function(work);
    let data: Vec<i64> = (1..=64).collect();
    let leaf: i64 = data.iter().sum();
    // depth 3 → 8 leaves
    check_all_modes(&ir, &[("d", 3), ("n", 64)], &[("a", &data)], 8 * leaf);
}

#[test]
fn lowering_errors() {
    // Unknown function.
    let bad = IrProgram::new("main").function(Function::new("main", ["x"]).stmt(Stmt::call(
        "nope",
        vec![],
        Some("y"),
    )));
    assert!(matches!(
        lower(&bad, Mode::Serial),
        Err(tpal_ir::LowerError::UnknownFunction { .. })
    ));

    // Arity mismatch.
    let bad = IrProgram::new("main")
        .function(Function::new("main", ["x"]).stmt(Stmt::call("g", vec![], Some("y"))))
        .function(Function::new("g", ["a", "b"]));
    assert!(matches!(
        lower(&bad, Mode::Serial),
        Err(tpal_ir::LowerError::ArityMismatch {
            expected: 2,
            got: 0,
            ..
        })
    ));

    // Parallelism inside a ParFor body.
    let bad = IrProgram::new("main").function(Function::new("main", ["n"]).stmt(Stmt::ParFor(
        ParFor::new("i", i(0), v("n")).body(vec![Stmt::ParFor(ParFor::new("j", i(0), i(1)))]),
    )));
    assert!(matches!(
        lower(&bad, Mode::Heartbeat),
        Err(tpal_ir::LowerError::NestedParallelism { .. })
    ));

    // Missing entry.
    let bad = IrProgram::new("absent");
    assert!(matches!(
        lower(&bad, Mode::Serial),
        Err(tpal_ir::LowerError::MissingEntry { .. })
    ));
}

#[test]
fn heartbeat_controls_promotion_count() {
    let f = Function::new("main", ["n"])
        .stmt(Stmt::assign("s", i(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("k", i(0), v("n"))
                .body(vec![Stmt::assign("s", v("s").add(v("k")))])
                .reducer(Reducer::new("s", BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(v("s")));
    let ir = IrProgram::new("main").function(f);
    let hb = lower(&ir, Mode::Heartbeat).unwrap();
    let n = 20_000i64;
    let expected = n * (n - 1) / 2;

    let (r1, s1, _) = run_with(
        &hb,
        MachineConfig::default().with_heartbeat(100),
        &[("n", n)],
        &[],
    );
    let (r2, s2, _) = run_with(
        &hb,
        MachineConfig::default().with_heartbeat(2000),
        &[("n", n)],
        &[],
    );
    assert_eq!(r1, expected);
    assert_eq!(r2, expected);
    assert!(
        s1.forks > s2.forks,
        "smaller ♥ must create more tasks ({} vs {})",
        s1.forks,
        s2.forks
    );
    // Amortisation: promotions are bounded by instructions/♥ (handler
    // instructions included, hence the slack factor).
    assert!(s1.promotions <= s1.instructions / 100 + 1);
}
