//! The native TPAL heartbeat runtime.
//!
//! This crate is the practical system of §3 of the paper, in Rust: a
//! work-stealing worker pool in which **parallelism stays latent** —
//! parallel loops run as plain serial loops over registers, and
//! `cilk_spawn`-style forks run as plain calls — until a periodic
//! *heartbeat* arrives, at which point the oldest latent opportunity is
//! *promoted* into a real task at a cost amortised against the work done
//! since the previous beat.
//!
//! # Heartbeat delivery
//!
//! The paper drives heartbeats with OS signals plus rollforward
//! compilation, whose whole purpose is to make an asynchronous interrupt
//! take effect exactly at a *promotion-ready program point*. We obtain
//! the identical semantics by polling one relaxed per-worker atomic flag
//! at promotion-ready points (loop iterations and fork points); the
//! paper's §6 measures the cost of such polling at ~2%, and our Figure 8
//! analogue measures ours. Two delivery mechanisms are provided,
//! mirroring the paper's §3.2/§5 comparison:
//!
//! * [`HeartbeatSource::PingThread`] — a dedicated thread wakes every ♥
//!   and raises each worker's flag in turn: the Linux `INT-PingThread`
//!   mechanism, with its linear delivery and sleep-granularity jitter.
//! * [`HeartbeatSource::LocalTimer`] — each worker compares the CPU
//!   timestamp counter against its own next deadline: the
//!   Nautilus/APIC-timer mechanism (precise, per-core, no cross-thread
//!   traffic).
//! * [`HeartbeatSource::Disabled`] — never beats: the serial-by-default
//!   path runs alone (used to measure residual instrumentation cost).
//!
//! # Example
//!
//! ```
//! use tpal_rt::{Runtime, RtConfig};
//!
//! let rt = Runtime::new(RtConfig::default().workers(2));
//! let total = rt.run(|ctx| {
//!     // Latent parallel loop: splits only when a heartbeat fires.
//!     ctx.reduce(0..10_000, 0i64, |_, i, acc| acc + i as i64, |a, b| a + b)
//! });
//! assert_eq!(total, (0..10_000i64).sum());
//! ```

#![warn(missing_docs)]

mod heartbeat;
mod job;
mod parallel;
pub mod pool;
pub mod program;
mod stats;

pub use heartbeat::HeartbeatSource;
pub use pool::{RtConfig, Runtime, WorkerCtx};
pub use program::{ProgramOutcome, ProgramStats};
pub use stats::RtStats;
// The interpreter tier for `Runtime::run_program`; re-exported so
// runtime users need not depend on `tpal-core` directly.
pub use tpal_core::tier::ExecTier;
// The scheduling policies themselves live in the shared policy kernel;
// re-exported so runtime users need not depend on `tpal-sched` directly.
pub use tpal_sched::{Policy, Promotion, Victim};
