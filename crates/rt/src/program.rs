//! Running TPAL programs on the native runtime.
//!
//! [`Runtime::run_program`] interprets a [`Program`] on a worker thread
//! with **real-time heartbeats**: instead of the abstract machine's
//! cycle-counter heartbeat ([`tpal_core::machine::MachineConfig`]), the
//! interpreter polls the worker's actual heartbeat source (local timer
//! or ping thread) between instruction chunks, and arms the
//! promotion-ready *watch* only once a beat is due — the same
//! signal-at-prppt semantics the paper obtains with rollforward
//! compilation. Straight-line stretches run through the configured
//! execution tier ([`RtConfig::exec_tier`]): reference, decoded
//! micro-ops, or threaded code, all bit-identical in outcome.
//!
//! Task management is deliberately local (a FIFO of ready tasks on the
//! interpreting worker, as in [`tpal_core::machine::Machine`]): TPAL
//! stores are single-threaded by construction, so promoted tasks
//! interleave on one worker while the pool's other workers keep serving
//! native (closure-level) jobs. Cross-worker TPAL execution is the
//! simulator's domain (`tpal-sim`), where costs are modelled rather
//! than measured.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;

use tpal_core::machine::{
    resolve_join, step_task, JoinResolution, MachineError, RunPause, StepOutcome, Stores,
    TaskState, Value,
};
use tpal_core::program::Program;
use tpal_core::tier::ExecBackend;
use tpal_trace::EventKind;

use crate::pool::{Runtime, WorkerCtx};

/// Instructions executed between heartbeat polls while the watch is
/// unarmed. Polls are further subsampled by the worker's local-timer
/// skip counter, so the per-chunk cost is one counter decrement.
const POLL_CHUNK: u64 = 1_000;

/// Abort threshold, matching `MachineConfig::default().step_limit`.
const STEP_LIMIT: u64 = 500_000_000;

/// The fork-join cost weight τ charged at join merges, matching
/// `MachineConfig::default().tau`.
const TAU: u64 = 10;

/// Counters from one [`Runtime::run_program`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgramStats {
    /// Instructions executed, over all tasks.
    pub instructions: u64,
    /// Heartbeats observed by the interpreter (watch armings).
    pub heartbeats: u64,
    /// Promotions: diversions into a `prppt` heartbeat handler.
    pub promotions: u64,
    /// `fork` instructions executed.
    pub forks: u64,
    /// `join` instructions executed.
    pub joins: u64,
}

/// The result of running a TPAL program on the runtime.
#[derive(Debug, Clone)]
pub struct ProgramOutcome {
    /// Execution counters.
    pub stats: ProgramStats,
    final_regs: Vec<(String, Value)>,
}

impl ProgramOutcome {
    /// Reads an integer register of the halting task by name.
    pub fn read_reg(&self, name: &str) -> Option<i64> {
        self.final_regs.iter().find_map(|(n, v)| {
            if n == name {
                match v {
                    Value::Int(i) => Some(*i),
                    _ => None,
                }
            } else {
                None
            }
        })
    }
}

impl Runtime {
    /// Runs a TPAL program to `halt` on a worker, with heartbeats from
    /// the runtime's real heartbeat source and straight-line execution
    /// through the configured tier ([`RtConfig::exec_tier`]).
    ///
    /// `args` seeds integer argument registers of the initial task.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a task;
    /// [`MachineError::UnknownName`] for an unknown register name in
    /// `args`; [`MachineError::Deadlock`] if the task set drains without
    /// a `halt`.
    pub fn run_program(
        &self,
        program: &Program,
        args: &[(&str, i64)],
    ) -> Result<ProgramOutcome, MachineError> {
        let backend = ExecBackend::new(program, self.exec_tier());
        self.run_program_with(program, &backend, args)
    }

    /// Like [`Runtime::run_program`], but executes through a
    /// pre-compiled backend instead of compiling one per call — the
    /// decode-once path for services that run one validated program
    /// many times (`tpal-serve`). The backend's tier overrides the
    /// runtime's configured [`RtConfig::exec_tier`] for this run;
    /// outcomes are bit-identical across tiers either way.
    pub fn run_program_with(
        &self,
        program: &Program,
        backend: &ExecBackend,
        args: &[(&str, i64)],
    ) -> Result<ProgramOutcome, MachineError> {
        let mut initial = TaskState::new(program, program.entry());
        for (name, value) in args {
            let reg = program.reg(name).ok_or(MachineError::UnknownName)?;
            initial.regs.write(reg, Value::Int(*value));
        }
        self.run(move |ctx| run_program_on(ctx, program, backend, initial))
    }
}

/// The interpreter driver: runs on one worker, polling its heartbeat.
fn run_program_on(
    ctx: &WorkerCtx<'_>,
    program: &Program,
    backend: &ExecBackend,
    initial: TaskState,
) -> Result<ProgramOutcome, MachineError> {
    let mut stores = Stores::new();
    let mut stats = ProgramStats::default();
    let mut queue: VecDeque<TaskState> = VecDeque::new();
    queue.push_back(initial);
    let mut halted: Option<TaskState> = None;
    // Set when a heartbeat was observed and the watch is armed; cleared
    // once the beat is consumed by a promotion attempt at a `prppt`.
    let mut armed = false;

    'outer: while let Some(mut task) = queue.pop_front() {
        'inner: loop {
            if !armed && ctx.heartbeat_due() {
                armed = true;
                stats.heartbeats += 1;
                ctx.shared
                    .counters
                    .shard(ctx.id)
                    .heartbeats_serviced
                    .fetch_add(1, Ordering::Relaxed);
                ctx.shared.trace_event(ctx.id, EventKind::HeartbeatServiced);
            }
            let max_steps = if armed { u64::MAX } else { POLL_CHUNK };
            let (steps, pause) =
                backend.run_until(program, &mut task, &mut stores, max_steps, armed)?;
            stats.instructions += steps;
            if stats.instructions > STEP_LIMIT {
                return Err(MachineError::StepLimitExceeded { limit: STEP_LIMIT });
            }
            match pause {
                RunPause::Quantum => {}
                RunPause::PromotionReady => {
                    // Only an armed watch pauses here; the beat is
                    // consumed either way (one attempt per beat).
                    armed = false;
                    if ctx.attempt_promotion(true) {
                        let handler = task
                            .at_promotion_point(program)
                            .expect("PromotionReady pause implies a prppt entry");
                        task.divert_to_handler(handler);
                        stats.promotions += 1;
                        ctx.shared
                            .counters
                            .shard(ctx.id)
                            .promotions
                            .fetch_add(1, Ordering::Relaxed);
                        ctx.shared
                            .trace_event(ctx.id, EventKind::TaskPromote { task: 0 });
                    }
                    // Declined: fall through; the next run_until is
                    // unwatched, so the task moves past the point.
                }
                RunPause::Boundary => match step_task(program, &mut task, &mut stores)? {
                    StepOutcome::Ran => stats.instructions += 1,
                    StepOutcome::Halted => {
                        stats.instructions += 1;
                        halted = Some(task);
                        break 'outer;
                    }
                    StepOutcome::Forked { child } => {
                        stats.instructions += 1;
                        stats.forks += 1;
                        ctx.shared
                            .counters
                            .shard(ctx.id)
                            .tasks_created
                            .fetch_add(1, Ordering::Relaxed);
                        queue.push_back(*child);
                    }
                    StepOutcome::Joined { jr } => {
                        stats.instructions += 1;
                        stats.joins += 1;
                        match resolve_join(program, task, jr, &mut stores, TAU)? {
                            JoinResolution::TaskDied => continue 'outer,
                            JoinResolution::Merged(resumed)
                            | JoinResolution::Completed(resumed) => {
                                task = *resumed;
                                continue 'inner;
                            }
                        }
                    }
                },
            }
        }
    }

    let task = match halted {
        Some(t) => t,
        None => return Err(MachineError::Deadlock),
    };
    let final_regs = (0..program.reg_count())
        .map(|i| {
            let r = tpal_core::isa::Reg::from_index(i);
            (
                program.reg_name(r).to_owned(),
                task.regs.read(r).unwrap_or(Value::Uninit),
            )
        })
        .collect();
    Ok(ProgramOutcome { stats, final_regs })
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use tpal_core::machine::{Machine, MachineConfig};
    use tpal_core::programs::{fib, prod};
    use tpal_core::tier::ExecTier;

    use crate::{HeartbeatSource, RtConfig, Runtime};

    /// Every tier computes the same results as the abstract machine,
    /// under real heartbeats.
    #[test]
    fn run_program_matches_machine_across_tiers() {
        let p = prod();
        let mut m = Machine::new(&p, MachineConfig::default());
        m.set_reg("a", 200).unwrap();
        m.set_reg("b", 3).unwrap();
        let want = m.run().unwrap().read_reg("c").unwrap();

        for tier in ExecTier::ALL {
            let rt = Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .heartbeat(Duration::from_micros(50))
                    .exec_tier(tier),
            );
            let out = rt.run_program(&p, &[("a", 200), ("b", 3)]).unwrap();
            assert_eq!(out.read_reg("c"), Some(want), "tier {tier}");
            assert!(out.stats.instructions > 0);
        }
    }

    /// `fib` forks and joins under heartbeat promotion; the result and
    /// task accounting must be self-consistent on every tier.
    #[test]
    fn run_program_promotes_fib() {
        let p = fib();
        for tier in ExecTier::ALL {
            let rt = Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .heartbeat(Duration::from_micros(20))
                    .exec_tier(tier),
            );
            let out = rt.run_program(&p, &[("n", 15)]).unwrap();
            assert_eq!(out.read_reg("f"), Some(610), "tier {tier}");
            // Every fork is eventually matched by joins on both sides.
            assert!(out.stats.joins >= out.stats.forks);
        }
    }

    /// With heartbeats disabled, the serial-by-default path runs alone:
    /// no promotions, no forks.
    #[test]
    fn run_program_serial_without_heartbeats() {
        let p = prod();
        let rt = Runtime::new(
            RtConfig::default()
                .workers(1)
                .source(HeartbeatSource::Disabled),
        );
        let out = rt.run_program(&p, &[("a", 100), ("b", 2)]).unwrap();
        assert_eq!(out.read_reg("c"), Some(200));
        assert_eq!(out.stats.promotions, 0);
        assert_eq!(out.stats.forks, 0);
    }
}
