//! Runtime instrumentation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, read back as [`RtStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub promotions: AtomicU64,
    pub tasks_created: AtomicU64,
    pub steals: AtomicU64,
    pub heartbeats_serviced: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self, delivered: u64) -> RtStats {
        RtStats {
            promotions: self.promotions.load(Ordering::Relaxed),
            tasks_created: self.tasks_created.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            heartbeats_serviced: self.heartbeats_serviced.load(Ordering::Relaxed),
            heartbeats_delivered: delivered,
        }
    }

    pub(crate) fn reset(&self) {
        self.promotions.store(0, Ordering::Relaxed);
        self.tasks_created.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.heartbeats_serviced.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of the runtime's counters (see
/// [`Runtime::stats`](crate::Runtime::stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Heartbeat events that performed a promotion.
    pub promotions: u64,
    /// Tasks actually created (promoted latent calls and loop splits) —
    /// the paper's Figure 15a quantity.
    pub tasks_created: u64,
    /// Successful steals between workers.
    pub steals: u64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: u64,
    /// Heartbeats delivered by the source (ping signals sent or local
    /// timer expirations) — with `heartbeats_serviced`, the Figure 10
    /// quantities.
    pub heartbeats_delivered: u64,
}
