//! Runtime instrumentation counters.
//!
//! The counter types migrated to `tpal-trace` (the shared trace layer),
//! so the simulator-side metrics and the native runtime read the same
//! definitions; this module keeps the runtime's historical names.
//!
//! Heartbeat *delivery* is counted per worker on its
//! [`HeartbeatCell`](crate::heartbeat::HeartbeatCell); `Runtime::stats`
//! sums the cells into the snapshot's `heartbeats_delivered`, and
//! `Runtime::reset_stats` must clear those cells alongside the shared
//! counters.

pub(crate) use tpal_trace::SchedCounters as Counters;
pub use tpal_trace::SchedStats as RtStats;
