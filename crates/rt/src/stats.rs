//! Runtime instrumentation counters.
//!
//! The counter types migrated to `tpal-trace` (the shared trace layer),
//! so the simulator-side metrics and the native runtime read the same
//! definitions; this module keeps the runtime's historical names. The
//! runtime uses the **sharded** layout: each worker increments only its
//! own cache-line-aligned shard (`counters.shard(ctx.id)`), so no
//! steady-state counter increment touches a line another worker writes;
//! [`Runtime::stats`](crate::Runtime::stats) aggregates the shards and
//! [`Runtime::per_worker_stats`](crate::Runtime::per_worker_stats)
//! exposes them individually.
//!
//! Heartbeat *delivery* is counted per worker on its
//! [`HeartbeatCell`](tpal_sched::HeartbeatCell); `Runtime::stats`
//! sums the cells into the snapshot's `heartbeats_delivered`, and
//! `Runtime::reset_stats` must clear those cells alongside the shared
//! counters.

pub use tpal_trace::SchedStats as RtStats;
pub(crate) use tpal_trace::ShardedCounters as Counters;
