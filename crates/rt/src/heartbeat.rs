//! The tick-domain clock behind heartbeat delivery.
//!
//! The delivery mechanisms themselves ([`HeartbeatSource`], the
//! per-worker `HeartbeatCell`) live in the shared scheduler-policy
//! kernel (`tpal-sched`); this module supplies the one thing that is
//! genuinely native: the CPU timestamp counter and its calibration.

use std::time::Duration;

pub use tpal_sched::HeartbeatSource;

/// Reads the CPU timestamp counter (x86-64), or a monotonic-clock
/// fallback in nanoseconds elsewhere.
#[inline]
pub(crate) fn now_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measures timestamp ticks per microsecond (one-time calibration, like
/// the paper's per-machine ♥ tuning step).
pub(crate) fn calibrate_ticks_per_us() -> u64 {
    let t0 = now_ticks();
    let w0 = std::time::Instant::now();
    std::thread::sleep(Duration::from_millis(5));
    let ticks = now_ticks().saturating_sub(t0);
    let us = w0.elapsed().as_micros().max(1) as u64;
    (ticks / us).max(1)
}

/// The process-wide calibration result. The 5ms sleep in
/// [`calibrate_ticks_per_us`] is paid once per process, not once per
/// [`Runtime`](crate::Runtime) construction — repeated pool creation
/// (tests, serve-style request loops) gets the cached value.
pub(crate) fn ticks_per_us() -> u64 {
    use std::sync::OnceLock;
    static CALIBRATED: OnceLock<u64> = OnceLock::new();
    *CALIBRATED.get_or_init(calibrate_ticks_per_us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance() {
        let a = now_ticks();
        std::thread::sleep(Duration::from_millis(1));
        assert!(now_ticks() > a);
    }

    #[test]
    fn calibration_positive() {
        assert!(calibrate_ticks_per_us() >= 1);
    }

    #[test]
    fn cached_calibration_is_stable_and_fast() {
        let first = ticks_per_us();
        assert!(first >= 1);
        let t = std::time::Instant::now();
        let second = ticks_per_us();
        assert_eq!(first, second);
        // The cached path must not re-run the 5ms calibration sleep.
        assert!(t.elapsed() < Duration::from_millis(5));
    }
}
