//! Heartbeat delivery mechanisms (§3.2 and §5 of the paper).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// How heartbeats reach the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatSource {
    /// A dedicated thread raises each worker's flag in turn every ♥
    /// (the Linux `INT-PingThread` mechanism: simple, linear, jittery).
    PingThread,
    /// Each worker compares the CPU timestamp counter against a private
    /// deadline at promotion-ready points (the Nautilus per-core APIC
    /// timer mechanism: precise, no cross-thread traffic).
    LocalTimer,
    /// Heartbeats never fire; latent parallelism is never promoted.
    Disabled,
}

/// Reads the CPU timestamp counter (x86-64), or a monotonic-clock
/// fallback in nanoseconds elsewhere.
#[inline]
pub(crate) fn now_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC has no preconditions.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measures timestamp ticks per microsecond (one-time calibration, like
/// the paper's per-machine ♥ tuning step).
pub(crate) fn calibrate_ticks_per_us() -> u64 {
    let t0 = now_ticks();
    let w0 = std::time::Instant::now();
    std::thread::sleep(Duration::from_millis(5));
    let ticks = now_ticks().saturating_sub(t0);
    let us = w0.elapsed().as_micros().max(1) as u64;
    (ticks / us).max(1)
}

/// Per-worker heartbeat state.
#[derive(Debug)]
pub(crate) struct HeartbeatCell {
    /// Raised by the ping thread; consumed at promotion-ready points.
    pub flag: AtomicBool,
    /// Next local-timer deadline in ticks.
    pub deadline: AtomicU64,
    /// Heartbeats delivered to this worker.
    pub delivered: AtomicU64,
}

impl HeartbeatCell {
    pub(crate) fn new() -> Self {
        HeartbeatCell {
            flag: AtomicBool::new(false),
            deadline: AtomicU64::new(u64::MAX),
            delivered: AtomicU64::new(0),
        }
    }

    /// Ping-thread delivery.
    pub(crate) fn raise(&self) {
        self.flag.store(true, Ordering::Release);
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// The promotion-point check. Returns `true` when a heartbeat is due
    /// on this worker under the given source.
    #[inline]
    pub(crate) fn poll(&self, source: HeartbeatSource, interval_ticks: u64) -> bool {
        match source {
            HeartbeatSource::Disabled => false,
            HeartbeatSource::PingThread => {
                // One relaxed load in the common case.
                if self.flag.load(Ordering::Relaxed) {
                    self.flag.store(false, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            HeartbeatSource::LocalTimer => {
                let now = now_ticks();
                let deadline = self.deadline.load(Ordering::Relaxed);
                if now >= deadline {
                    self.deadline
                        .store(now.wrapping_add(interval_ticks), Ordering::Relaxed);
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Clears the delivery counter. Must be part of every stats reset:
    /// delivery is counted here per worker rather than in the shared
    /// [`Counters`](crate::stats::Counters), so resetting only the shared
    /// counters would leave post-reset serviced/delivered ratios computed
    /// against a stale cumulative denominator.
    pub(crate) fn reset_delivery(&self) {
        self.delivered.store(0, Ordering::Relaxed);
    }

    /// Arms the local timer.
    pub(crate) fn arm(&self, interval_ticks: u64) {
        self.deadline
            .store(now_ticks().wrapping_add(interval_ticks), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_advance() {
        let a = now_ticks();
        std::thread::sleep(Duration::from_millis(1));
        assert!(now_ticks() > a);
    }

    #[test]
    fn calibration_positive() {
        assert!(calibrate_ticks_per_us() >= 1);
    }

    #[test]
    fn ping_flag_consumed_once() {
        let c = HeartbeatCell::new();
        assert!(!c.poll(HeartbeatSource::PingThread, 0));
        c.raise();
        assert!(c.poll(HeartbeatSource::PingThread, 0));
        assert!(!c.poll(HeartbeatSource::PingThread, 0));
        assert_eq!(c.delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disabled_never_beats() {
        let c = HeartbeatCell::new();
        c.raise();
        assert!(!c.poll(HeartbeatSource::Disabled, 0));
    }

    #[test]
    fn local_timer_beats_after_deadline() {
        let c = HeartbeatCell::new();
        c.deadline.store(0, Ordering::Relaxed);
        assert!(c.poll(HeartbeatSource::LocalTimer, u64::MAX / 2));
        // Re-armed far in the future.
        assert!(!c.poll(HeartbeatSource::LocalTimer, u64::MAX / 2));
    }
}
