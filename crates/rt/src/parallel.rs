//! The heartbeat parallel constructs: latent fork-join and latent loops.
//!
//! Both constructs are *serial by default*: `join2` runs two closures
//! back to back and `reduce`/`parallel_for` run an ordinary sequential
//! loop. Each polls the worker's heartbeat at its promotion-ready points
//! (the fork point; every loop iteration). When a beat is due, the
//! handler promotes the **oldest** latent fork on the mark list
//! (outermost first, Appendix B.2) or, if none exists, splits the
//! remaining iterations of the current loop in half (Figure 2). Either
//! way, exactly one task is created per beat, so task-creation cost is
//! amortised against ♥ of useful work.

use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::Ordering;

use tpal_trace::EventKind;

use crate::job::{latent_state, CountLatch, Job, LatentState, PartialStack};
use crate::pool::{LatentSlot, WorkerCtx};

impl WorkerCtx<'_> {
    /// Polls the heartbeat source; `true` when a beat is due on this
    /// worker (consumes the beat).
    ///
    /// Local-timer polls are subsampled: the timestamp counter is read
    /// only every 32nd call, so the common-case cost is one counter
    /// decrement — the polling budget the paper's §6 discussion targets.
    #[inline]
    pub fn heartbeat_due(&self) -> bool {
        if matches!(self.shared.source, crate::HeartbeatSource::LocalTimer) {
            let skip = self.poll_skip.get();
            if skip > 0 {
                self.poll_skip.set(skip - 1);
                return false;
            }
            self.poll_skip.set(31);
        }
        let due = self.shared.workers[self.id].hb.poll(
            self.shared.source,
            self.shared.interval_ticks,
            crate::heartbeat::now_ticks,
        );
        // A local-timer beat is *delivered* at the expiry poll itself
        // (ping deliveries are recorded by the ping thread at raise
        // time, on the receiving worker's track).
        if due && matches!(self.shared.source, crate::HeartbeatSource::LocalTimer) {
            self.shared
                .trace_event(self.id, EventKind::HeartbeatDelivered);
        }
        due
    }

    /// Promotes the oldest latent fork, if any. Returns whether a task
    /// was created.
    fn promote_oldest_latent(&self) -> bool {
        let slot = {
            let list = self.latent.borrow();
            list.iter()
                .find(|s| {
                    // SAFETY: slots point into live join2 frames (see the
                    // mark-list discipline in `join2`).
                    unsafe { (*s.state).get() == latent_state::LATENT }
                })
                .copied()
        };
        let Some(slot) = slot else { return false };
        // SAFETY: as above; the CAS arbitrates against the owner's
        // inline claim.
        let won = unsafe { (*slot.state).claim(latent_state::PROMOTED) };
        if !won {
            return false;
        }
        // SAFETY: the slot's constructor guarantees make_job/data match.
        let job = unsafe { (slot.make_job)(slot.data) };
        self.push_job(job);
        true
    }

    /// Polls at a promotion-ready point that has no loop of its own to
    /// split: services a due heartbeat and asks the promotion policy
    /// whether to attempt a promotion. Returns whether one happened.
    pub fn poll_promote(&self) -> bool {
        let beat = self.heartbeat_due();
        // Counter increments land on this worker's private shard: no
        // shared cache line on the poll/promotion path.
        if beat {
            let c = self.shared.counters.shard(self.id);
            c.heartbeats_serviced.fetch_add(1, Ordering::Relaxed);
            self.shared
                .trace_event(self.id, EventKind::HeartbeatServiced);
        }
        if !self.attempt_promotion(beat) {
            return false;
        }
        let c = self.shared.counters.shard(self.id);
        if self.promote_oldest_latent() {
            c.promotions.fetch_add(1, Ordering::Relaxed);
            c.tasks_created.fetch_add(1, Ordering::Relaxed);
            self.shared
                .trace_event(self.id, EventKind::TaskPromote { task: 0 });
            self.shared.trace_event(
                self.id,
                EventKind::TaskSpawn {
                    parent: 0,
                    child: 0,
                },
            );
            true
        } else {
            false
        }
    }

    /// Latent binary fork-join (the `fork`/`join` interface of Figure 3,
    /// with the serial-by-default semantics of Figures 22/23): runs
    /// `a` immediately; `b` stays latent on the mark list and is
    /// executed inline after `a` unless a heartbeat promoted it to a
    /// task in the meantime.
    pub fn join2<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce(&WorkerCtx<'_>) -> RA,
        B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
        RB: Send,
    {
        struct Entry<B, RB> {
            state: LatentState,
            b: UnsafeCell<Option<B>>,
            result: UnsafeCell<Option<RB>>,
        }

        unsafe fn exec_entry<B, RB>(data: *mut (), ctx: &WorkerCtx<'_>)
        where
            B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
            RB: Send,
        {
            // SAFETY: the owning join2 frame outlives this job (it helps
            // until `state` is DONE). The state CAS guarantees exclusive
            // access to `b`.
            let e = unsafe { &*(data as *const Entry<B, RB>) };
            let b = unsafe { (*e.b.get()).take().expect("latent body taken once") };
            let rb = b(ctx);
            // SAFETY: exclusive until DONE is published.
            unsafe { *e.result.get() = Some(rb) };
            e.state.set_done();
        }

        unsafe fn mk<B, RB>(data: *const ()) -> Job
        where
            B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
            RB: Send,
        {
            // SAFETY: forwarded contract.
            unsafe { Job::new(data as *mut (), exec_entry::<B, RB>) }
        }

        let entry: Entry<B, RB> = Entry {
            state: LatentState::new(),
            b: UnsafeCell::new(Some(b)),
            result: UnsafeCell::new(None),
        };
        self.latent.borrow_mut().push(LatentSlot {
            state: &entry.state,
            data: &entry as *const Entry<B, RB> as *const (),
            make_job: mk::<B, RB>,
        });

        // The fork point is itself promotion-ready.
        self.poll_promote();

        let ra = a(self);

        let slot = self
            .latent
            .borrow_mut()
            .pop()
            .expect("mark list imbalance: join2 frames must nest");
        debug_assert!(std::ptr::eq(
            slot.data,
            &entry as *const Entry<B, RB> as *const ()
        ));

        if entry.state.claim(latent_state::CLAIMED) {
            // Still latent: run b inline — the zero-cost serial path.
            // SAFETY: the claim gives exclusive access.
            let b = unsafe { (*entry.b.get()).take().expect("latent body present") };
            let rb = b(self);
            (ra, rb)
        } else {
            // Promoted: help the pool until the task completes.
            self.help_until(|| entry.state.get() == latent_state::DONE);
            // SAFETY: DONE (acquire) publishes the result.
            let rb = unsafe { (*entry.result.get()).take().expect("result published") };
            (ra, rb)
        }
    }

    /// A latent parallel loop with a reduction: `acc = body(ctx, i, acc)`
    /// folded over `range`, partial results combined with the associative
    /// and commutative `merge`.
    pub fn reduce<T, B, M>(&self, range: Range<usize>, identity: T, body: B, merge: M) -> T
    where
        T: Send + Clone,
        B: Fn(&WorkerCtx<'_>, usize, T) -> T + Sync,
        M: Fn(T, T) -> T + Sync,
    {
        // Tiny ranges (at most one polling block) take a serial fast
        // path: the loop entry is still a promotion-ready point for
        // *outer* latent parallelism, but no split of this loop could
        // ever happen between its only two polls, so none of the
        // splitting machinery is set up. This keeps "expose maximum
        // parallelism" habits (e.g. a nested reduce over a 3-element
        // sparse row) at near-zero cost.
        if range.len() <= self.shared.poll_stride {
            self.poll_promote();
            let mut acc = identity;
            for i in range {
                acc = body(self, i, acc);
            }
            return acc;
        }
        struct Ctl<T, B, M> {
            pending: CountLatch,
            /// Lock-free partial-result accumulation (Treiber stack):
            /// sound because `merge` is required to be associative and
            /// commutative, so arbitrary arrival order is fine.
            partials: PartialStack<T>,
            identity: T,
            body: B2<B>,
            merge: B2<M>,
        }
        /// A Sync-asserting shared reference wrapper.
        struct B2<X>(*const X);
        unsafe impl<X: Sync> Send for B2<X> {}
        unsafe impl<X: Sync> Sync for B2<X> {}

        struct Chunk<T, B, M> {
            ctl: *const Ctl<T, B, M>,
            lo: usize,
            hi: usize,
        }

        fn run_chunk<T, B, M>(
            ctx: &WorkerCtx<'_>,
            ctl: &Ctl<T, B, M>,
            mut lo: usize,
            mut hi: usize,
        ) -> T
        where
            T: Send + Clone,
            B: Fn(&WorkerCtx<'_>, usize, T) -> T + Sync,
            M: Fn(T, T) -> T + Sync,
        {
            unsafe fn exec_chunk<T, B, M>(data: *mut (), ctx: &WorkerCtx<'_>)
            where
                T: Send + Clone,
                B: Fn(&WorkerCtx<'_>, usize, T) -> T + Sync,
                M: Fn(T, T) -> T + Sync,
            {
                // SAFETY: the initiating reduce waits on `pending`, so
                // the Ctl outlives every chunk.
                let chunk = unsafe { Box::from_raw(data as *mut Chunk<T, B, M>) };
                let ctl = unsafe { &*chunk.ctl };
                let t = run_chunk(ctx, ctl, chunk.lo, chunk.hi);
                ctl.partials.push(t);
                ctl.pending.done();
            }

            let body = unsafe { &*ctl.body.0 };
            let mut acc = ctl.identity.clone();
            while lo < hi {
                // Promotion-ready points sit between short iteration
                // blocks rather than between single iterations: the
                // blocks stay tight loops the compiler can vectorise,
                // keeping the polling substitution for rollforward within
                // the paper's §6 budget. The stride is far below any
                // sensible ♥.
                let stride = ctx.shared.poll_stride;
                let beat = ctx.heartbeat_due();
                if beat {
                    let c = ctx.shared.counters.shard(ctx.id);
                    c.heartbeats_serviced.fetch_add(1, Ordering::Relaxed);
                    ctx.shared.trace_event(ctx.id, EventKind::HeartbeatServiced);
                }
                // The policy arbitrates: `heartbeat` promotes once per
                // beat, `eager` at every poll block, `never` not at all
                // ("interrupts only" — measure the mechanism, not the
                // promotions), `adaptive:τ` once per sufficiently spaced
                // beat.
                if ctx.attempt_promotion(beat) {
                    let c = ctx.shared.counters.shard(ctx.id);
                    if ctx.promote_oldest_latent() {
                        // Outermost-first: a latent fork took the beat.
                        c.promotions.fetch_add(1, Ordering::Relaxed);
                        c.tasks_created.fetch_add(1, Ordering::Relaxed);
                        ctx.shared
                            .trace_event(ctx.id, EventKind::TaskPromote { task: 0 });
                        ctx.shared.trace_event(
                            ctx.id,
                            EventKind::TaskSpawn {
                                parent: 0,
                                child: 0,
                            },
                        );
                    } else if hi - lo >= 2 {
                        // Split the remaining range in half (Figure 2).
                        let mid = lo + (hi - lo) / 2;
                        ctl.pending.add(1);
                        let chunk = Box::new(Chunk { ctl, lo: mid, hi });
                        // SAFETY: ctl outlives the chunk (see exec_chunk).
                        let job = unsafe {
                            Job::new(Box::into_raw(chunk) as *mut (), exec_chunk::<T, B, M>)
                        };
                        ctx.push_job(job);
                        c.promotions.fetch_add(1, Ordering::Relaxed);
                        c.tasks_created.fetch_add(1, Ordering::Relaxed);
                        ctx.shared
                            .trace_event(ctx.id, EventKind::TaskPromote { task: 0 });
                        ctx.shared.trace_event(
                            ctx.id,
                            EventKind::TaskSpawn {
                                parent: 0,
                                child: 0,
                            },
                        );
                        hi = mid;
                    }
                }
                let stop = hi.min(lo + stride);
                while lo < stop {
                    acc = body(ctx, lo, acc);
                    lo += 1;
                }
            }
            acc
        }

        let ctl: Ctl<T, B, M> = Ctl {
            pending: CountLatch::new(),
            partials: PartialStack::new(),
            identity,
            body: B2(&body),
            merge: B2(&merge),
        };
        let acc = run_chunk(self, &ctl, range.start, range.end);
        self.help_until(|| ctl.pending.is_clear());
        let merge = unsafe { &*ctl.merge.0 };
        let mut result = acc;
        let mut partials = ctl.partials;
        for p in partials.drain() {
            result = merge(result, p);
        }
        result
    }

    /// A latent parallel loop without a reduction. The body may freely
    /// write to disjoint shared state (e.g. distinct array elements).
    pub fn parallel_for<B>(&self, range: Range<usize>, body: B)
    where
        B: Fn(&WorkerCtx<'_>, usize) + Sync,
    {
        self.reduce(range, (), |ctx, i, ()| body(ctx, i), |(), ()| ());
    }

    /// *Eager* binary fork-join: `b` is forked as a task immediately
    /// (paying task-creation cost on every call), `a` runs inline, and
    /// the caller helps the pool until `b` completes.
    ///
    /// This is Cilk's execution model — *initial decomposition* — and
    /// exists as the baseline the paper compares heartbeat scheduling
    /// against; the `tpal-cilk` crate builds its API on it. Heartbeat
    /// code should use [`WorkerCtx::join2`] instead.
    pub fn spawn2<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce(&WorkerCtx<'_>) -> RA,
        B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
        RB: Send,
    {
        struct Entry<B, RB> {
            state: LatentState,
            b: UnsafeCell<Option<B>>,
            result: UnsafeCell<Option<RB>>,
        }

        unsafe fn exec_entry<B, RB>(data: *mut (), ctx: &WorkerCtx<'_>)
        where
            B: FnOnce(&WorkerCtx<'_>) -> RB + Send,
            RB: Send,
        {
            // SAFETY: the owning spawn2 frame helps until DONE; the
            // entry was handed over wholesale at the push.
            let e = unsafe { &*(data as *const Entry<B, RB>) };
            let b = unsafe { (*e.b.get()).take().expect("spawned body taken once") };
            let rb = b(ctx);
            unsafe { *e.result.get() = Some(rb) };
            e.state.set_done();
        }

        let entry: Entry<B, RB> = Entry {
            state: LatentState::new(),
            b: UnsafeCell::new(Some(b)),
            result: UnsafeCell::new(None),
        };
        entry.state.claim(latent_state::PROMOTED);
        self.shared
            .counters
            .shard(self.id)
            .tasks_created
            .fetch_add(1, Ordering::Relaxed);
        self.shared.trace_event(
            self.id,
            EventKind::TaskSpawn {
                parent: 0,
                child: 0,
            },
        );
        // SAFETY: the entry outlives the job (help_until below).
        let job = unsafe {
            Job::new(
                &entry as *const Entry<B, RB> as *mut (),
                exec_entry::<B, RB>,
            )
        };
        self.push_job(job);

        let ra = a(self);
        self.help_until(|| entry.state.get() == latent_state::DONE);
        // SAFETY: DONE (acquire) publishes the result.
        let rb = unsafe { (*entry.result.get()).take().expect("result published") };
        (ra, rb)
    }

    /// The number of workers in the pool (Cilk's `P` for its `8P` loop
    /// grain heuristic).
    pub fn pool_size(&self) -> usize {
        self.shared.workers.len()
    }
}
