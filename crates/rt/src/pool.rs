//! The worker pool: threads, deques, stealing, and the heartbeat plumbing.
//!
//! The pool itself is policy-free — it runs type-erased jobs from per-worker
//! Chase–Lev deques with randomized stealing and a global injector for
//! external submissions. The heartbeat/promotion logic lives in
//! `parallel.rs`; the eager Cilk baseline (`tpal-cilk`) reuses this pool
//! with the heartbeat source disabled.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use tpal_core::tier::ExecTier;
use tpal_deque::{deque, CachePadded, Injector, Steal, Stealer, Worker};
use tpal_sched::{
    HeartbeatCell, HeartbeatSource, Policy, PromoteState, Promotion, RngEnv, SplitMix64, Victim,
    VictimPolicy,
};
use tpal_trace::{EventKind, SharedTracer, Trace};

use crate::heartbeat::{now_ticks, ticks_per_us};
use crate::job::{Job, ResultLatch};
use crate::stats::{Counters, RtStats};

/// Configuration of a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// The heartbeat interval ♥.
    pub heartbeat: Duration,
    /// The heartbeat delivery mechanism.
    pub source: HeartbeatSource,
    /// When `true`, heartbeats are delivered and serviced but never
    /// promote — the "Serial, interrupts only" configuration of the
    /// paper's Figures 9 and 13, which isolates the cost of the
    /// interrupt mechanism itself.
    pub suppress_promotions: bool,
    /// Iterations per polling block of latent loops: promotion-ready
    /// points sit between blocks of this many iterations. Small strides
    /// poll (and can promote) at finer granularity but inhibit loop
    /// optimisation — the §6 software-polling trade-off, measured by the
    /// `ablation_polling_stride` bench.
    pub poll_stride: usize,
    /// Record structured scheduling events (deliveries, services,
    /// promotions, task creations, steals) into a per-worker trace,
    /// collected with [`Runtime::take_trace`]. Off by default: when off,
    /// every record site is one `None` check and nothing is allocated.
    pub trace: bool,
    /// The scheduling policy: when poll points attempt promotions and
    /// whom a thief probes. The runtime's historical behaviour is
    /// `heartbeat` promotion with the `sequence` victim sweep.
    /// [`RtConfig::suppress_promotions`] overrides the promotion half
    /// to `never`.
    pub policy: Policy,
    /// Which interpreter tier [`Runtime::run_program`] executes TPAL
    /// straight-line stretches through. All tiers are bit-identical in
    /// outcome (see [`tpal_core::tier`]); native closure-level jobs are
    /// unaffected.
    pub exec_tier: ExecTier,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            heartbeat: Duration::from_micros(100),
            source: HeartbeatSource::LocalTimer,
            suppress_promotions: false,
            poll_stride: 32,
            trace: false,
            policy: Policy {
                promotion: Promotion::Heartbeat,
                victim: Victim::Sequence,
            },
            exec_tier: ExecTier::default(),
        }
    }
}

impl RtConfig {
    /// Sets the worker count.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Sets the heartbeat interval ♥.
    pub fn heartbeat(mut self, d: Duration) -> Self {
        self.heartbeat = d;
        self
    }

    /// Sets the heartbeat source.
    pub fn source(mut self, s: HeartbeatSource) -> Self {
        self.source = s;
        self
    }

    /// Delivers and services heartbeats without promoting (the paper's
    /// "interrupts only" overhead configuration).
    pub fn suppress_promotions(mut self, yes: bool) -> Self {
        self.suppress_promotions = yes;
        self
    }

    /// Sets the loop polling stride (see [`RtConfig::poll_stride`]).
    pub fn poll_stride(mut self, n: usize) -> Self {
        self.poll_stride = n.max(1);
        self
    }

    /// Enables structured event tracing (see [`RtConfig::trace`]).
    pub fn trace(mut self, yes: bool) -> Self {
        self.trace = yes;
        self
    }

    /// Sets the scheduling policy (see [`RtConfig::policy`]).
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }

    /// Sets the execution tier for TPAL program runs (default:
    /// threaded).
    pub fn exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }
}

/// Idle-sleep states of a worker's [`SleepCell`].
const SLEEP_AWAKE: u32 = 0;
const SLEEP_PARKED: u32 = 1;
const SLEEP_NOTIFIED: u32 = 2;

/// One worker's eventcount slot: the sleep state word plus the thread
/// handle a waker unparks. Cache-line-aligned so a waker's CAS on one
/// worker's cell never invalidates a neighbour's line.
#[repr(align(64))]
pub(crate) struct SleepCell {
    state: AtomicU32,
    thread: OnceLock<std::thread::Thread>,
}

impl SleepCell {
    fn new() -> SleepCell {
        SleepCell {
            state: AtomicU32::new(SLEEP_AWAKE),
            thread: OnceLock::new(),
        }
    }
}

/// Per-worker shared state, cache-line-aligned as a false-sharing
/// audit measure: thieves read `stealer`, heartbeat sources write `hb`,
/// and wakers write `sleep` — `repr(align(64))` on the struct plus the
/// aligned `SleepCell` keep one worker's hot words from sharing a line
/// with its neighbour's in the `Vec<WorkerShared>`.
#[repr(align(64))]
pub(crate) struct WorkerShared {
    pub stealer: Stealer<Job>,
    pub hb: HeartbeatCell,
    pub(crate) sleep: SleepCell,
}

pub(crate) struct Shared {
    pub workers: Vec<WorkerShared>,
    /// External-submission queue: lock-free MPMC (no lock on the
    /// injector-pop leg of `find_job`).
    pub injector: Injector<Job>,
    /// Number of workers currently registered as parked (or about to
    /// park). Padded: it sits on the producer's `notify` fast path.
    pub(crate) n_sleeping: CachePadded<AtomicU64>,
    pub shutdown: AtomicBool,
    pub counters: Counters,
    pub source: HeartbeatSource,
    pub interval_ticks: u64,
    /// The effective promotion policy ([`RtConfig::suppress_promotions`]
    /// maps to [`Promotion::Never`] at construction).
    pub promotion: Promotion,
    /// The steal-victim policy.
    pub victim: Victim,
    pub poll_stride: usize,
    /// The interpreter tier for [`Runtime::run_program`].
    pub exec_tier: ExecTier,
    /// Sweep salt drawn by `sequence`-policy thieves; padded because
    /// concurrent thieves hammer it while stealing.
    pub rng_salt: CachePadded<AtomicU64>,
    /// Structured event recording (None unless [`RtConfig::trace`]).
    pub tracer: Option<SharedTracer>,
    /// Timestamp origin for trace event times.
    pub start_ticks: u64,
}

impl Shared {
    /// Wakes one parked worker after publishing work — the eventcount
    /// notify side. The fast path (no one parked, i.e. every push while
    /// the pool is busy) is one fence plus one relaxed load: no lock,
    /// no CAS, no syscall.
    ///
    /// The `SeqCst` fence pairs with the sleeper's `SeqCst` registration
    /// in `idle_wait`: either this load observes the sleeper count (and
    /// we unpark someone), or the sleeper's registration ordered after
    /// our fence — in which case its pre-park recheck observes the work
    /// we published before calling `notify`. No lost wakeups either way.
    #[inline]
    pub(crate) fn notify(&self) {
        fence(Ordering::SeqCst);
        if self.n_sleeping.0.load(Ordering::Relaxed) == 0 {
            return;
        }
        self.notify_slow();
    }

    /// The slow path: claim one parked worker (PARKED→NOTIFIED) and
    /// unpark it. Scanning is bounded by the worker count and runs only
    /// while some worker is actually asleep.
    #[cold]
    fn notify_slow(&self) {
        for w in &self.workers {
            if w.sleep
                .state
                .compare_exchange(
                    SLEEP_PARKED,
                    SLEEP_NOTIFIED,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                if let Some(t) = w.sleep.thread.get() {
                    t.unpark();
                }
                return;
            }
        }
    }

    /// Wakes every worker (shutdown).
    fn wake_all(&self) {
        for w in &self.workers {
            if let Some(t) = w.sleep.thread.get() {
                t.unpark();
            }
        }
    }

    /// Whether any queued work is currently visible: a non-empty
    /// injector or a non-empty worker deque. Used as the sleeper's
    /// pre-park recheck; spurious `true` costs one extra `find_job`
    /// sweep, spurious `false` cannot happen for work published before
    /// the sleeper registered (see `notify`).
    fn has_visible_work(&self) -> bool {
        !self.injector.is_empty() || self.workers.iter().any(|w| !w.stealer.is_empty())
    }

    /// Records one instant event on `worker`'s track, timestamped in
    /// ticks since runtime start. One `None` check when tracing is off.
    #[inline]
    pub(crate) fn trace_event(&self, worker: usize, kind: EventKind) {
        if let Some(t) = &self.tracer {
            t.record(
                worker,
                now_ticks().saturating_sub(self.start_ticks),
                0,
                kind,
            );
        }
    }
}

thread_local! {
    /// The deque owner handle of the current worker thread (set once at
    /// worker start; `None` on external threads).
    static LOCAL_DEQUE: RefCell<Option<Worker<Job>>> = const { RefCell::new(None) };
}

/// A latent-parallelism mark (the promotion-ready mark list of Appendix
/// B.2): enough type-erased state to reify the entry as a task.
#[derive(Clone, Copy)]
pub(crate) struct LatentSlot {
    pub state: *const crate::job::LatentState,
    pub data: *const (),
    pub make_job: unsafe fn(*const ()) -> Job,
}

/// The per-worker execution context handed to all parallel constructs.
///
/// A `WorkerCtx` identifies the worker a computation is currently running
/// on; it is `!Send` by construction (obtained only inside
/// [`Runtime::run`] closures and task bodies).
pub struct WorkerCtx<'a> {
    pub(crate) shared: &'a Shared,
    pub(crate) id: usize,
    /// The promotion-ready mark list: oldest first.
    pub(crate) latent: RefCell<Vec<LatentSlot>>,
    /// Local-timer poll subsampling: remaining polls to skip before the
    /// next timestamp read (keeps the per-iteration cost to a counter
    /// decrement; granularity stays far below ♥).
    pub(crate) poll_skip: std::cell::Cell<u32>,
    /// Promotion-policy state (adaptive-τ spacing; the beat flag lives
    /// on the worker's [`HeartbeatCell`]).
    pub(crate) promote: std::cell::Cell<PromoteState>,
    /// Per-worker RNG for randomized victim selection (`uniform`).
    pub(crate) rng: RefCell<SplitMix64>,
    _not_send: std::marker::PhantomData<*mut ()>,
}

impl<'a> WorkerCtx<'a> {
    fn new(shared: &'a Shared, id: usize) -> Self {
        WorkerCtx {
            shared,
            id,
            latent: RefCell::new(Vec::new()),
            poll_skip: std::cell::Cell::new(0),
            promote: std::cell::Cell::new(PromoteState::default()),
            rng: RefCell::new(SplitMix64::new(0x9E3779B9 ^ id as u64)),
            _not_send: std::marker::PhantomData,
        }
    }

    /// The worker's index.
    pub fn worker_id(&self) -> usize {
        self.id
    }

    /// Pushes a job on this worker's deque and wakes a thief.
    pub(crate) fn push_job(&self, job: Job) {
        LOCAL_DEQUE.with(|d| {
            d.borrow()
                .as_ref()
                .expect("push_job outside a worker thread")
                .push(job)
        });
        self.shared.notify();
    }

    /// Pops from the local deque, the injector, or a random victim.
    pub(crate) fn find_job(&self) -> Option<Job> {
        if let Some(job) = LOCAL_DEQUE.with(|d| d.borrow().as_ref().and_then(|w| w.pop())) {
            return Some(job);
        }
        if let Some(job) = self.shared.injector.pop() {
            return Some(job);
        }
        let n = self.shared.workers.len();
        if n > 1 {
            let policy = self.shared.victim;
            // A fresh sweep salt per round keeps concurrent `sequence`
            // thieves spread over victims; the other policies ignore it.
            let salt = match policy {
                Victim::Sequence => self.shared.rng_salt.0.fetch_add(1, Ordering::Relaxed),
                _ => 0,
            };
            let mut rng = self.rng.borrow_mut();
            for k in 0..(n - 1) as u64 {
                let v = {
                    let mut env = RngEnv::new(&mut rng, 0, n);
                    policy.probe(&mut env, self.id, salt, k)
                };
                loop {
                    match self.shared.workers[v].stealer.steal() {
                        Steal::Success(job) => {
                            self.shared
                                .counters
                                .shard(self.id)
                                .steals
                                .fetch_add(1, Ordering::Relaxed);
                            self.shared
                                .trace_event(self.id, EventKind::Steal { victim: v as u32 });
                            return Some(job);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
        }
        None
    }

    /// Asks the promotion policy whether this poll point — which
    /// observed a due heartbeat iff `beat` — should attempt a promotion
    /// now (the library surface of the policy kernel's
    /// [`PromotionPolicy`](tpal_sched::PromotionPolicy)).
    #[inline]
    pub(crate) fn attempt_promotion(&self, beat: bool) -> bool {
        use tpal_sched::PromotionPolicy as _;
        let promo = self.shared.promotion;
        // Only the adaptive policy consults the clock.
        let now = match promo {
            Promotion::AdaptiveTau { .. } if beat => now_ticks(),
            _ => 0,
        };
        let mut st = self.promote.get();
        if promo.should_attempt(&st, beat, now) {
            st.record_promotion(now);
            self.promote.set(st);
            true
        } else {
            false
        }
    }

    /// Runs queued work until `done` holds (a helping join: never
    /// blocks the worker).
    pub(crate) fn help_until(&self, done: impl Fn() -> bool) {
        while !done() {
            match self.find_job() {
                Some(job) => job.run(self),
                None => std::thread::yield_now(),
            }
        }
    }
}

/// The TPAL heartbeat runtime: a worker pool plus a heartbeat source.
pub struct Runtime {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    ping: Option<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Creates the runtime, spawning its workers (and the ping thread,
    /// under [`HeartbeatSource::PingThread`]).
    pub fn new(config: RtConfig) -> Runtime {
        // Calibration is cached process-wide (a OnceLock): only the
        // first Runtime ever constructed pays the 5ms calibration sleep.
        let interval_ticks = (config.heartbeat.as_nanos() as u64).max(1) * ticks_per_us() / 1_000;
        let mut owners = Vec::new();
        let mut workers = Vec::new();
        for _ in 0..config.workers {
            let (w, s) = deque::<Job>();
            owners.push(w);
            workers.push(WorkerShared {
                stealer: s,
                hb: HeartbeatCell::new(),
                sleep: SleepCell::new(),
            });
        }
        // The effective policy: `suppress_promotions` is a hard override
        // (the serial-by-default measurement mode) over whatever the
        // policy bundle asked for.
        let effective = Policy {
            promotion: if config.suppress_promotions {
                Promotion::Never
            } else {
                config.policy.promotion
            },
            victim: config.policy.victim,
        };
        let shared = Arc::new(Shared {
            workers,
            injector: Injector::new(),
            n_sleeping: CachePadded(AtomicU64::new(0)),
            shutdown: AtomicBool::new(false),
            counters: Counters::new(config.workers),
            source: config.source,
            interval_ticks: interval_ticks.max(1),
            promotion: effective.promotion,
            victim: effective.victim,
            poll_stride: config.poll_stride.max(1),
            exec_tier: config.exec_tier,
            rng_salt: CachePadded(AtomicU64::new(0x9E3779B9)),
            tracer: config.trace.then(|| {
                SharedTracer::new(config.workers, "ticks", interval_ticks.max(1))
                    .policy(effective.label())
            }),
            start_ticks: now_ticks(),
        });

        let mut handles = Vec::new();
        for (id, owner) in owners.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("tpal-worker-{id}"))
                    .spawn(move || worker_main(shared, id, owner))
                    .expect("spawn worker"),
            );
        }

        let ping = match config.source {
            HeartbeatSource::PingThread => {
                let shared = Arc::clone(&shared);
                let interval = config.heartbeat;
                Some(
                    std::thread::Builder::new()
                        .name("tpal-ping".to_owned())
                        .spawn(move || ping_main(shared, interval))
                        .expect("spawn ping thread"),
                )
            }
            _ => None,
        };

        Runtime {
            shared,
            handles,
            ping,
        }
    }

    /// Runs `f` on a worker and returns its result, blocking the calling
    /// thread until completion (an atomic latch plus `park` — no mutex
    /// or condvar on the submission/completion path).
    pub fn run<F, T>(&self, f: F) -> T
    where
        F: FnOnce(&WorkerCtx<'_>) -> T + Send,
        T: Send,
    {
        struct Root<F, T> {
            f: UnsafeCell<Option<F>>,
            result: UnsafeCell<Option<T>>,
            latch: ResultLatch,
        }
        let root = Root {
            f: UnsafeCell::new(Some(f)),
            result: UnsafeCell::new(None),
            latch: ResultLatch::new(),
        };

        unsafe fn exec<F, T>(data: *mut (), ctx: &WorkerCtx<'_>)
        where
            F: FnOnce(&WorkerCtx<'_>) -> T + Send,
            T: Send,
        {
            // SAFETY: `run` keeps `root` alive until the latch releases,
            // and the job runs exactly once, so the cells are exclusive
            // to this execution until `set` publishes them.
            let root = unsafe { &*(data as *const Root<F, T>) };
            let f = unsafe { (*root.f.get()).take().expect("root job ran twice") };
            let t = f(ctx);
            unsafe { *root.result.get() = Some(t) };
            root.latch.set();
        }

        // SAFETY: `root` outlives the job (we block below until the
        // result is published).
        let job = unsafe { Job::new(&root as *const Root<F, T> as *mut (), exec::<F, T>) };
        self.shared.injector.push(job);
        self.shared.notify();

        root.latch.wait();
        // SAFETY: the released latch (acquire) publishes the result
        // write; the job has finished touching the cells.
        unsafe { (*root.result.get()).take().expect("result published") }
    }

    /// A snapshot of the runtime's instrumentation counters (the
    /// aggregate over every worker's shard).
    pub fn stats(&self) -> RtStats {
        let delivered: u64 = self
            .shared
            .workers
            .iter()
            .map(|w| w.hb.delivered.load(Ordering::Relaxed))
            .sum();
        self.shared.counters.snapshot(delivered)
    }

    /// Per-worker snapshots of the sharded counters (index = worker id).
    /// The field-wise sums equal [`Runtime::stats`] — counters are
    /// sharded for scalability, not resampled.
    pub fn per_worker_stats(&self) -> Vec<RtStats> {
        let delivered: Vec<u64> = self
            .shared
            .workers
            .iter()
            .map(|w| w.hb.delivered.load(Ordering::Relaxed))
            .collect();
        self.shared.counters.per_worker(&delivered)
    }

    /// Resets the instrumentation counters (between benchmark trials).
    ///
    /// Covers both the shared counters and each worker's per-cell
    /// delivery count — delivery lives on the cells, and a reset that
    /// misses them leaves every later [`Runtime::stats`] snapshot with a
    /// cumulative `heartbeats_delivered` against freshly zeroed serviced
    /// counts (the `stats_reset_isolates_trials` regression test).
    pub fn reset_stats(&self) {
        self.shared.counters.reset();
        for w in &self.shared.workers {
            w.hb.reset_delivery();
        }
    }

    /// Collects and drains the structured event trace. `None` unless the
    /// runtime was built with [`RtConfig::trace`]. Call after `run`
    /// returns: events from still-running jobs may otherwise land in
    /// either this collection or the next.
    pub fn take_trace(&self) -> Option<Trace> {
        self.shared.tracer.as_ref().map(SharedTracer::collect)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.shared.workers.len()
    }

    /// The configured execution tier for TPAL program runs.
    pub fn exec_tier(&self) -> ExecTier {
        self.shared.exec_tier
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(p) = self.ping.take() {
            let _ = p.join();
        }
    }
}

/// Consecutive empty `find_job` rounds spent busy-spinning (with
/// exponentially growing spin batches) before escalating to yields.
const IDLE_SPIN_ROUNDS: u32 = 6;
/// Further rounds spent yielding the CPU before parking.
const IDLE_YIELD_ROUNDS: u32 = 4;

/// One step of the idle protocol: bounded spin with exponential backoff,
/// then yields, then an eventcount park. Returns the updated round
/// counter (reset by the caller when work is found).
///
/// The park leg is the sleeper side of the eventcount: publish PARKED,
/// bump the sleeper count (both `SeqCst`, pairing with `notify`'s
/// fence), then re-check for work that may have been pushed before we
/// registered — only park if the world is still empty. `park_timeout`
/// (rather than `park`) keeps the pool self-healing against any missed
/// edge (and bounds shutdown latency), but wakeups are normally
/// edge-triggered by `notify`.
fn idle_wait(shared: &Shared, id: usize, rounds: u32) -> u32 {
    if rounds < IDLE_SPIN_ROUNDS {
        for _ in 0..(1u32 << rounds) {
            std::hint::spin_loop();
        }
    } else if rounds < IDLE_SPIN_ROUNDS + IDLE_YIELD_ROUNDS {
        std::thread::yield_now();
    } else {
        let cell = &shared.workers[id].sleep;
        cell.state.store(SLEEP_PARKED, Ordering::SeqCst);
        shared.n_sleeping.0.fetch_add(1, Ordering::SeqCst);
        if !shared.shutdown.load(Ordering::Acquire) && !shared.has_visible_work() {
            std::thread::park_timeout(Duration::from_micros(200));
        }
        shared.n_sleeping.0.fetch_sub(1, Ordering::SeqCst);
        // Overwriting a NOTIFIED claim is fine: we are awake and about
        // to sweep for work; at worst a stashed unpark token makes one
        // future park return early.
        cell.state.store(SLEEP_AWAKE, Ordering::Release);
        return rounds;
    }
    rounds + 1
}

fn worker_main(shared: Arc<Shared>, id: usize, owner: Worker<Job>) {
    LOCAL_DEQUE.with(|d| *d.borrow_mut() = Some(owner));
    let ctx = WorkerCtx::new(&shared, id);
    shared.workers[id]
        .sleep
        .thread
        .set(std::thread::current())
        .expect("worker sleep cell initialised once");
    shared.workers[id]
        .hb
        .arm(shared.interval_ticks, now_ticks());

    let mut idle_rounds = 0u32;
    while !shared.shutdown.load(Ordering::Acquire) {
        match ctx.find_job() {
            Some(job) => {
                idle_rounds = 0;
                job.run(&ctx);
            }
            None => idle_rounds = idle_wait(&shared, id, idle_rounds),
        }
    }
    LOCAL_DEQUE.with(|d| *d.borrow_mut() = None);
}

/// Upper bound on one uninterruptible sleep slice of the ping thread.
/// Sleeping a whole ♥ between shutdown checks would make
/// `Runtime::drop` block for up to one full heartbeat period — with a
/// large ♥ (a server building and dropping runtimes per tenant config)
/// that is seconds, not milliseconds. Sub-♥ intervals still sleep their
/// exact duration, so delivery timing below this bound is unchanged.
const PING_SHUTDOWN_POLL: Duration = Duration::from_millis(1);

fn ping_main(shared: Arc<Shared>, interval: Duration) {
    // The Linux INT-PingThread mechanism: wake every ♥ and deliver a
    // signal to each worker in turn (linear delivery; jitter comes from
    // sleep granularity, exactly the effect §4.4 measures).
    'deliver: while !shared.shutdown.load(Ordering::Acquire) {
        // Sleep ♥ in bounded sub-slices so a shutdown raised mid-sleep
        // is observed within PING_SHUTDOWN_POLL, independent of ♥.
        let mut remaining = interval;
        while remaining > Duration::ZERO {
            let slice = remaining.min(PING_SHUTDOWN_POLL);
            std::thread::sleep(slice);
            if shared.shutdown.load(Ordering::Acquire) {
                break 'deliver;
            }
            remaining = remaining.saturating_sub(slice);
        }
        for (i, w) in shared.workers.iter().enumerate() {
            w.hb.raise();
            shared.trace_event(i, EventKind::HeartbeatDelivered);
        }
    }
}

// The victim-order and heartbeat-cell unit tests live with the logic in
// `tpal-sched` (plus a proptest over arbitrary pool shapes there).
