//! Type-erased jobs and completion latches.
//!
//! Promoted tasks reference state on the promoting worker's stack (the
//! latent closure, the loop body, reducer cells). That is sound because
//! every construct joins — waits for all tasks it published — before its
//! stack frame dies, the same discipline `rayon::scope` relies on. The
//! unsafety is confined to this module and `parallel.rs`.

use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use crate::pool::WorkerCtx;

/// A type-erased unit of work, executable by any worker.
pub(crate) struct Job {
    data: *mut (),
    exec: unsafe fn(*mut (), &WorkerCtx<'_>),
}

// SAFETY: jobs are only constructed from Sync closures plus atomically
// synchronised result cells, and are executed exactly once.
unsafe impl Send for Job {}

impl Job {
    /// Creates a job from a raw pointer and an exec function.
    ///
    /// # Safety
    ///
    /// `data` must remain valid until the job has executed, and `exec`
    /// must tolerate running on any worker thread.
    pub(crate) unsafe fn new(data: *mut (), exec: unsafe fn(*mut (), &WorkerCtx<'_>)) -> Job {
        Job { data, exec }
    }

    /// Runs the job on the given worker.
    pub(crate) fn run(self, ctx: &WorkerCtx<'_>) {
        // SAFETY: contract established at construction.
        unsafe { (self.exec)(self.data, ctx) }
    }
}

/// A one-shot completion counter: `wait`ers help the pool until the
/// count reaches zero.
#[derive(Debug)]
pub(crate) struct CountLatch {
    pending: AtomicU32,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        CountLatch {
            pending: AtomicU32::new(0),
        }
    }

    pub(crate) fn add(&self, n: u32) {
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn done(&self) {
        self.pending.fetch_sub(1, Ordering::Release);
    }

    pub(crate) fn is_clear(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// A one-shot completion latch for an external waiter: the submitting
/// thread blocks in [`ResultLatch::wait`] (atomic check + `park`, no
/// mutex or condvar) until a worker calls [`ResultLatch::set`]. Any
/// data the setter published before `set` is visible to the waiter
/// after `wait` returns (release store / acquire load pairing).
///
/// Park/unpark token semantics make the protocol race-free: if `set`
/// runs before the waiter parks, the stashed unpark token makes the
/// next `park` return immediately; spurious park returns re-check the
/// flag.
#[derive(Debug)]
pub(crate) struct ResultLatch {
    done: AtomicU32,
    waiter: std::thread::Thread,
}

impl ResultLatch {
    /// A latch whose waiter is the **current** thread (the only thread
    /// that may call [`ResultLatch::wait`]).
    pub(crate) fn new() -> Self {
        ResultLatch {
            done: AtomicU32::new(0),
            waiter: std::thread::current(),
        }
    }

    /// Releases the latch (callable from any thread, at most once).
    pub(crate) fn set(&self) {
        self.done.store(1, Ordering::Release);
        self.waiter.unpark();
    }

    /// Whether the latch has been released.
    pub(crate) fn is_set(&self) -> bool {
        self.done.load(Ordering::Acquire) == 1
    }

    /// Blocks the constructing thread until the latch is released.
    pub(crate) fn wait(&self) {
        while !self.is_set() {
            std::thread::park();
        }
    }
}

/// A lock-free accumulation list (Treiber stack) for reduction
/// partials: chunk tasks push their partial result with one CAS; the
/// initiating worker drains after its count latch clears. Order is
/// arbitrary — callers must combine with an associative **and
/// commutative** merge, which `reduce` already requires.
#[derive(Debug)]
pub(crate) struct PartialStack<T> {
    head: AtomicPtr<PartialNode<T>>,
}

struct PartialNode<T> {
    value: T,
    next: *mut PartialNode<T>,
}

// SAFETY: values are moved in before the publishing CAS (release) and
// moved out only by the exclusive drain (`&mut`) or Drop.
unsafe impl<T: Send> Send for PartialStack<T> {}
unsafe impl<T: Send> Sync for PartialStack<T> {}

impl<T> PartialStack<T> {
    pub(crate) fn new() -> Self {
        PartialStack {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Pushes one partial; lock-free from any worker.
    pub(crate) fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(PartialNode {
            value,
            next: std::ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Relaxed);
            // SAFETY: `node` is unpublished; we still own it.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Takes every pushed value (exclusive access ends the race window;
    /// the caller synchronizes via its completion latch first).
    pub(crate) fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        let mut p = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        while !p.is_null() {
            // SAFETY: detached exclusively-owned chain.
            let node = unsafe { Box::from_raw(p) };
            out.push(node.value);
            p = node.next;
        }
        out
    }
}

impl<T> Drop for PartialStack<T> {
    fn drop(&mut self) {
        self.drain();
    }
}

/// States of a latent (mark-list) entry.
pub(crate) mod latent_state {
    /// Still latent: may be promoted or claimed inline.
    pub const LATENT: u32 = 0;
    /// Promoted into a task (queued or running).
    pub const PROMOTED: u32 = 1;
    /// Claimed by its owner for inline execution.
    pub const CLAIMED: u32 = 2;
    /// The promoted task finished; the result slot is initialised.
    pub const DONE: u32 = 3;
}

/// The state word of a latent entry.
#[derive(Debug)]
pub(crate) struct LatentState(pub AtomicU32);

impl LatentState {
    pub(crate) fn new() -> Self {
        LatentState(AtomicU32::new(latent_state::LATENT))
    }

    /// Attempts `LATENT → to`; returns whether the transition won.
    pub(crate) fn claim(&self, to: u32) -> bool {
        self.0
            .compare_exchange(
                latent_state::LATENT,
                to,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    pub(crate) fn set_done(&self) {
        self.0.store(latent_state::DONE, Ordering::Release);
    }

    pub(crate) fn get(&self) -> u32 {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_counts() {
        let l = CountLatch::new();
        assert!(l.is_clear());
        l.add(2);
        assert!(!l.is_clear());
        l.done();
        assert!(!l.is_clear());
        l.done();
        assert!(l.is_clear());
    }

    #[test]
    fn latent_state_single_claim() {
        let s = LatentState::new();
        assert!(s.claim(latent_state::PROMOTED));
        assert!(!s.claim(latent_state::CLAIMED));
        assert_eq!(s.get(), latent_state::PROMOTED);
        s.set_done();
        assert_eq!(s.get(), latent_state::DONE);
    }

    #[test]
    fn partial_stack_collects_all_pushes() {
        let mut s = PartialStack::new();
        for i in 0..100 {
            s.push(i);
        }
        let mut got = s.drain();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(s.drain().is_empty());
    }

    #[test]
    fn partial_stack_concurrent_pushes() {
        let s = std::sync::Arc::new(PartialStack::new());
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        s.push(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut s = std::sync::Arc::try_unwrap(s).unwrap();
        let mut got = s.drain();
        got.sort_unstable();
        assert_eq!(got, (0..4_000).collect::<Vec<_>>());
    }

    #[test]
    fn partial_stack_drop_frees_unconsumed() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let s = PartialStack::new();
            s.push(D);
            s.push(D);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn result_latch_set_before_wait() {
        let l = ResultLatch::new();
        assert!(!l.is_set());
        l.set();
        assert!(l.is_set());
        l.wait(); // already set: returns immediately
    }

    #[test]
    fn result_latch_cross_thread() {
        for _ in 0..50 {
            let l = std::sync::Arc::new(ResultLatch::new());
            let data = std::sync::Arc::new(AtomicU32::new(0));
            let (l2, d2) = (std::sync::Arc::clone(&l), std::sync::Arc::clone(&data));
            let h = std::thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                l2.set();
            });
            l.wait();
            // The release/acquire pairing publishes the setter's writes.
            assert_eq!(data.load(Ordering::Relaxed), 42);
            h.join().unwrap();
        }
    }
}

#[cfg(test)]
mod proptests {
    //! Property coverage for the latches (ISSUE 7 satellite): arbitrary
    //! add/done interleavings never release a `CountLatch` early and
    //! always release it at zero; a `ResultLatch` is released exactly by
    //! its single `set`, never before.

    use proptest::prelude::*;

    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Drive a CountLatch through an arbitrary interleaving of adds
        /// (tasks published) and dones (tasks finished), with dones
        /// never outrunning adds — the only sequences the runtime can
        /// produce. The latch must read clear exactly when the running
        /// balance is zero.
        #[test]
        fn count_latch_releases_exactly_at_zero(
            ops in proptest::collection::vec((any::<bool>(), 1u32..4), 0..64)
        ) {
            let latch = CountLatch::new();
            let mut outstanding: u64 = 0;
            for (is_add, n) in ops {
                if is_add {
                    latch.add(n);
                    outstanding += u64::from(n);
                } else if outstanding > 0 {
                    latch.done();
                    outstanding -= 1;
                }
                prop_assert_eq!(
                    latch.is_clear(),
                    outstanding == 0,
                    "latch must be clear iff no task is outstanding"
                );
            }
            // Drain: the latch always releases once every done arrives.
            while outstanding > 0 {
                prop_assert!(!latch.is_clear(), "released early");
                latch.done();
                outstanding -= 1;
            }
            prop_assert!(latch.is_clear(), "failed to release at zero");
        }

        /// A ResultLatch observed through an arbitrary probe schedule:
        /// never set before `set`, always set after, including when the
        /// setter races the waiter across threads.
        #[test]
        fn result_latch_never_releases_early(
            probes_before in 0usize..8,
            probes_after in 0usize..8,
            cross_thread in any::<bool>(),
        ) {
            let latch = std::sync::Arc::new(ResultLatch::new());
            for _ in 0..probes_before {
                prop_assert!(!latch.is_set(), "released before set");
            }
            if cross_thread {
                let l2 = std::sync::Arc::clone(&latch);
                let h = std::thread::spawn(move || l2.set());
                latch.wait();
                h.join().unwrap();
            } else {
                latch.set();
            }
            for _ in 0..=probes_after {
                prop_assert!(latch.is_set(), "set did not release");
            }
        }
    }
}
