//! Type-erased jobs and completion latches.
//!
//! Promoted tasks reference state on the promoting worker's stack (the
//! latent closure, the loop body, reducer cells). That is sound because
//! every construct joins — waits for all tasks it published — before its
//! stack frame dies, the same discipline `rayon::scope` relies on. The
//! unsafety is confined to this module and `parallel.rs`.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::pool::WorkerCtx;

/// A type-erased unit of work, executable by any worker.
pub(crate) struct Job {
    data: *mut (),
    exec: unsafe fn(*mut (), &WorkerCtx<'_>),
}

// SAFETY: jobs are only constructed from Sync closures plus atomically
// synchronised result cells, and are executed exactly once.
unsafe impl Send for Job {}

impl Job {
    /// Creates a job from a raw pointer and an exec function.
    ///
    /// # Safety
    ///
    /// `data` must remain valid until the job has executed, and `exec`
    /// must tolerate running on any worker thread.
    pub(crate) unsafe fn new(data: *mut (), exec: unsafe fn(*mut (), &WorkerCtx<'_>)) -> Job {
        Job { data, exec }
    }

    /// Runs the job on the given worker.
    pub(crate) fn run(self, ctx: &WorkerCtx<'_>) {
        // SAFETY: contract established at construction.
        unsafe { (self.exec)(self.data, ctx) }
    }
}

/// A one-shot completion counter: `wait`ers help the pool until the
/// count reaches zero.
#[derive(Debug)]
pub(crate) struct CountLatch {
    pending: AtomicU32,
}

impl CountLatch {
    pub(crate) fn new() -> Self {
        CountLatch {
            pending: AtomicU32::new(0),
        }
    }

    pub(crate) fn add(&self, n: u32) {
        self.pending.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn done(&self) {
        self.pending.fetch_sub(1, Ordering::Release);
    }

    pub(crate) fn is_clear(&self) -> bool {
        self.pending.load(Ordering::Acquire) == 0
    }
}

/// States of a latent (mark-list) entry.
pub(crate) mod latent_state {
    /// Still latent: may be promoted or claimed inline.
    pub const LATENT: u32 = 0;
    /// Promoted into a task (queued or running).
    pub const PROMOTED: u32 = 1;
    /// Claimed by its owner for inline execution.
    pub const CLAIMED: u32 = 2;
    /// The promoted task finished; the result slot is initialised.
    pub const DONE: u32 = 3;
}

/// The state word of a latent entry.
#[derive(Debug)]
pub(crate) struct LatentState(pub AtomicU32);

impl LatentState {
    pub(crate) fn new() -> Self {
        LatentState(AtomicU32::new(latent_state::LATENT))
    }

    /// Attempts `LATENT → to`; returns whether the transition won.
    pub(crate) fn claim(&self, to: u32) -> bool {
        self.0
            .compare_exchange(
                latent_state::LATENT,
                to,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    pub(crate) fn set_done(&self) {
        self.0.store(latent_state::DONE, Ordering::Release);
    }

    pub(crate) fn get(&self) -> u32 {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_counts() {
        let l = CountLatch::new();
        assert!(l.is_clear());
        l.add(2);
        assert!(!l.is_clear());
        l.done();
        assert!(!l.is_clear());
        l.done();
        assert!(l.is_clear());
    }

    #[test]
    fn latent_state_single_claim() {
        let s = LatentState::new();
        assert!(s.claim(latent_state::PROMOTED));
        assert!(!s.claim(latent_state::CLAIMED));
        assert_eq!(s.get(), latent_state::PROMOTED);
        s.set_done();
        assert_eq!(s.get(), latent_state::DONE);
    }
}
