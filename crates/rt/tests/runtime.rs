//! Integration tests of the native heartbeat runtime: correctness under
//! every heartbeat source, promotion accounting, and the serial-by-default
//! guarantee.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn rt(workers: usize, source: HeartbeatSource, us: u64) -> Runtime {
    Runtime::new(
        RtConfig::default()
            .workers(workers)
            .source(source)
            .heartbeat(Duration::from_micros(us)),
    )
}

#[test]
fn reduce_sums_correctly_all_sources() {
    for source in [
        HeartbeatSource::Disabled,
        HeartbeatSource::LocalTimer,
        HeartbeatSource::PingThread,
    ] {
        let rt = rt(2, source, 50);
        let n = 2_000_000usize;
        let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, acc| acc + i as u64, |a, b| a + b));
        assert_eq!(total, (n as u64 - 1) * n as u64 / 2, "{source:?}");
    }
}

#[test]
fn disabled_source_never_promotes() {
    let rt = rt(2, HeartbeatSource::Disabled, 50);
    let total = rt.run(|ctx| ctx.reduce(0..500_000, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, 499_999u64 * 500_000 / 2);
    let stats = rt.stats();
    assert_eq!(stats.tasks_created, 0);
    assert_eq!(stats.promotions, 0);
}

#[test]
fn local_timer_promotes_long_loops() {
    let rt = rt(2, HeartbeatSource::LocalTimer, 100);
    let n = 4_000_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    let stats = rt.stats();
    assert!(
        stats.tasks_created > 0,
        "a multi-ms loop at ♥=100µs must promote: {stats:?}"
    );
    // Amortisation: at most one task per serviced heartbeat.
    assert!(stats.tasks_created <= stats.heartbeats_serviced.max(1));
}

#[test]
fn parallel_for_writes_all_slots() {
    let rt = rt(3, HeartbeatSource::LocalTimer, 80);
    let n = 300_000usize;
    let out: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    rt.run(|ctx| {
        ctx.parallel_for(0..n, |_, i| {
            out[i].fetch_add(i + 1, Ordering::Relaxed);
        })
    });
    for (i, c) in out.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), i + 1, "slot {i}");
    }
}

fn fib(ctx: &tpal_rt::WorkerCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join2(|ctx| fib(ctx, n - 1), |ctx| fib(ctx, n - 2));
    a + b
}

#[test]
fn join2_fib_all_sources() {
    for source in [
        HeartbeatSource::Disabled,
        HeartbeatSource::LocalTimer,
        HeartbeatSource::PingThread,
    ] {
        let rt = rt(2, source, 60);
        let f = rt.run(|ctx| fib(ctx, 27));
        assert_eq!(f, 196_418, "{source:?}");
    }
}

#[test]
fn join2_serial_by_default() {
    // With heartbeats disabled, join2 must create zero tasks — the
    // "near zero-cost abstraction" property.
    let rt = rt(2, HeartbeatSource::Disabled, 60);
    let f = rt.run(|ctx| fib(ctx, 24));
    assert_eq!(f, 46_368);
    assert_eq!(rt.stats().tasks_created, 0);
}

#[test]
fn join2_promotes_under_heartbeat() {
    let rt = rt(2, HeartbeatSource::LocalTimer, 60);
    let f = rt.run(|ctx| fib(ctx, 29));
    assert_eq!(f, 514_229);
    let stats = rt.stats();
    assert!(stats.tasks_created > 0, "{stats:?}");
    assert!(stats.promotions == stats.tasks_created);
}

#[test]
fn nested_loops_and_forks_compose() {
    // join2 over two reduces, nested under another join2.
    let rt = rt(2, HeartbeatSource::LocalTimer, 60);
    let n = 200_000usize;
    let result = rt.run(|ctx| {
        let ((a, b), c) = ctx.join2(
            |ctx| {
                ctx.join2(
                    |ctx| ctx.reduce(0..n, 0u64, |_, i, s| s + i as u64, |a, b| a + b),
                    |ctx| ctx.reduce(0..n, 0u64, |_, i, s| s + 2 * i as u64, |a, b| a + b),
                )
            },
            |ctx| ctx.reduce(0..n, 0u64, |_, i, s| s + 3 * i as u64, |a, b| a + b),
        );
        a + b + c
    });
    let base = (n as u64 - 1) * n as u64 / 2;
    assert_eq!(result, base * 6);
}

#[test]
fn run_returns_values_and_can_rerun() {
    let rt = rt(2, HeartbeatSource::LocalTimer, 100);
    let a = rt.run(|_| 41);
    let b = rt.run(|_| a + 1);
    assert_eq!(b, 42);
}

#[test]
fn ping_thread_delivers_heartbeats() {
    let rt = rt(2, HeartbeatSource::PingThread, 100);
    // Busy work long enough (milliseconds) to see several beats.
    let x = rt.run(|ctx| {
        ctx.reduce(
            0..30_000_000usize,
            0u64,
            |_, i, a| a ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
            |a, b| a ^ b,
        )
    });
    std::hint::black_box(x);
    let stats = rt.stats();
    assert!(
        stats.heartbeats_delivered > 0,
        "ping thread should have delivered: {stats:?}"
    );
}

#[test]
fn stats_reset() {
    let rt = rt(2, HeartbeatSource::LocalTimer, 50);
    rt.run(|ctx| {
        ctx.reduce(
            0..1_000_000usize,
            0u64,
            |_, i, a| a + i as u64,
            |a, b| a + b,
        )
    });
    rt.reset_stats();
    let s = rt.stats();
    assert_eq!(s.tasks_created, 0);
    assert_eq!(s.heartbeats_delivered, 0);
}

#[test]
fn stats_reset_isolates_trials() {
    // Regression: a reset must clear per-worker delivery cells, not only
    // the shared counters. Run a workload, reset, run another — the
    // post-reset snapshot must reflect the second run alone. A reset that
    // skips `HeartbeatCell::delivered` fails here: the first run's
    // deliveries leak into the second snapshot, pushing `delivered` far
    // past what one trial plus the idle window in between can produce.
    let work = |rt: &Runtime, n: usize| {
        std::hint::black_box(rt.run(move |ctx| {
            ctx.reduce(
                0..n,
                0u64,
                |_, i, a| a ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                |a, b| a ^ b,
            )
        }));
    };
    let rt = rt(2, HeartbeatSource::LocalTimer, 50);
    // Long first trial, short second: delivery counts scale with trial
    // length, so a snapshot contaminated by the first trial cannot stay
    // below the first trial's own count.
    work(&rt, 20_000_000);
    let first = rt.stats();
    assert!(first.heartbeats_delivered > 0, "{first:?}");

    rt.reset_stats();
    assert_eq!(
        rt.stats().heartbeats_delivered,
        0,
        "reset must zero delivery"
    );
    work(&rt, 1_000_000);
    let second = rt.stats();
    assert!(second.heartbeats_delivered > 0, "{second:?}");
    // A leaked first trial would make `second >= first`; a clean reset
    // leaves roughly a twentieth (plus a few idle-window expiries).
    assert!(
        second.heartbeats_delivered < first.heartbeats_delivered,
        "delivered {} after reset vs {} in the 20x longer first trial: first trial leaked",
        second.heartbeats_delivered,
        first.heartbeats_delivered
    );
}

#[test]
fn trace_records_scheduling_events() {
    // Tracing on: a promoting workload must leave delivered/serviced
    // events consistent with the counter snapshot, and tracing must
    // default to off (take_trace -> None).
    let rt = Runtime::new(
        RtConfig::default()
            .workers(2)
            .source(HeartbeatSource::LocalTimer)
            .heartbeat(Duration::from_micros(50))
            .trace(true),
    );
    let n = 3_000_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    let stats = rt.stats();
    let trace = rt.take_trace().expect("tracing was enabled");
    assert_eq!(trace.tracks.len(), 2);
    let report = tpal_trace::MetricsReport::from_trace(&trace);
    assert_eq!(report.heartbeats_serviced, stats.heartbeats_serviced);
    assert_eq!(report.tasks_created, stats.tasks_created);
    assert_eq!(report.promotions, stats.promotions);
    // Delivery events cover at least the beats the workers consumed
    // (counter and event are recorded at the same poll for LocalTimer;
    // idle-window expiries can add more on the counter read later).
    assert!(report.heartbeats_delivered > 0);
    // Chrome rendering of a runtime trace must validate like a sim one.
    let json = tpal_trace::chrome::chrome_json(&trace);
    tpal_trace::chrome::validate(&json).expect("runtime trace renders valid Chrome JSON");

    let untraced = crate::rt(2, HeartbeatSource::LocalTimer, 50);
    assert!(untraced.take_trace().is_none(), "tracing defaults to off");
}

#[test]
fn per_worker_stats_sum_to_aggregate() {
    // The sharded counters must be a partition, not a resample: the
    // field-wise sum of `per_worker_stats` equals `stats` exactly.
    let rt = rt(3, HeartbeatSource::LocalTimer, 50);
    let n = 4_000_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);

    let agg = rt.stats();
    let per = rt.per_worker_stats();
    assert_eq!(per.len(), 3);
    assert_eq!(
        per.iter().map(|s| s.promotions).sum::<u64>(),
        agg.promotions
    );
    assert_eq!(
        per.iter().map(|s| s.tasks_created).sum::<u64>(),
        agg.tasks_created
    );
    assert_eq!(per.iter().map(|s| s.steals).sum::<u64>(), agg.steals);
    assert_eq!(
        per.iter().map(|s| s.heartbeats_serviced).sum::<u64>(),
        agg.heartbeats_serviced
    );
    assert!(agg.tasks_created > 0, "workload should promote: {agg:?}");

    // Reset clears every shard.
    rt.reset_stats();
    for s in rt.per_worker_stats() {
        assert_eq!(s.tasks_created, 0);
        assert_eq!(s.steals, 0);
    }
}

#[test]
fn report_per_worker_totals_match_counters() {
    // MetricsReport's per-core steal/promotion tallies (derived from the
    // trace) must sum to the counter-shard totals for traced events.
    let rt = Runtime::new(
        RtConfig::default()
            .workers(2)
            .source(HeartbeatSource::LocalTimer)
            .heartbeat(Duration::from_micros(50))
            .trace(true),
    );
    let n = 4_000_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    let stats = rt.stats();
    let trace = rt.take_trace().expect("tracing enabled");
    let report = tpal_trace::MetricsReport::from_trace(&trace);
    assert_eq!(report.per_core_promotions.len(), 2);
    assert_eq!(
        report.per_core_promotions.iter().sum::<u64>(),
        stats.promotions
    );
    assert_eq!(report.per_core_steals.iter().sum::<u64>(), stats.steals);
}

#[test]
fn concurrent_external_submitters() {
    // Many external threads calling `run` concurrently hammer the
    // lock-free injector, the result latch, and the eventcount wake
    // protocol at once. Every submission must complete with the right
    // answer, none lost, none doubled.
    let rt = std::sync::Arc::new(crate::rt(4, HeartbeatSource::LocalTimer, 50));
    let submitters = 6usize;
    let rounds = 40usize;
    let handles: Vec<_> = (0..submitters)
        .map(|t| {
            let rt = std::sync::Arc::clone(&rt);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    let n = 10_000 + t * 1_000 + r;
                    let total = rt.run(move |ctx| {
                        ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b)
                    });
                    assert_eq!(total, (n as u64 - 1) * n as u64 / 2, "t{t} r{r}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn many_workers_oversubscribed() {
    // More workers than cores (this machine has one): correctness must
    // not depend on real parallelism.
    let rt = rt(8, HeartbeatSource::LocalTimer, 50);
    let n = 1_000_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
}

#[test]
fn ping_thread_runtime_drops_quickly_with_large_heartbeat() {
    // ISSUE 8 regression: `ping_main` used to sleep a whole ♥ between
    // shutdown checks, so dropping a PingThread runtime with a large ♥
    // blocked for up to one full heartbeat period. With ♥ = 1s the drop
    // must still return in milliseconds (bounded by the ping thread's
    // shutdown-poll slice, not by ♥).
    let rt = rt(2, HeartbeatSource::PingThread, 1_000_000); // ♥ = 1s
    let n = 10_000usize;
    let total = rt.run(|ctx| ctx.reduce(0..n, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(total, (n as u64 - 1) * n as u64 / 2);
    let t = std::time::Instant::now();
    drop(rt);
    let elapsed = t.elapsed();
    assert!(
        elapsed < Duration::from_millis(250),
        "PingThread runtime drop took {elapsed:?}; shutdown latency must \
         be bounded independent of ♥"
    );
}
