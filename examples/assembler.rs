//! Hand-written TPAL assembly, straight from the paper.
//!
//! Parses the `prod` listing of Figure 2 from its concrete syntax, runs
//! it under several heartbeat settings, prints the machine's statistics,
//! and round-trips the nested `pow` and recursive `fib` programs through
//! the pretty-printer.
//!
//! Run with: `cargo run --release --example assembler`

use tpal::core::asm::{parse_program, print_program};
use tpal::core::machine::{Machine, MachineConfig};
use tpal::core::programs;

const PROD_LISTING: &str = r#"
// The prod program of Figure 2: computes c = a * b.
prod: [.]
    r := 0
    jump loop
exit: [jtppt assoc-comm; {r -> r2}; comb]
    c := r
    halt
loop: [prppt loop_try_promote]
    if-jump a, exit
    r := r + b
    a := a - 1
    jump loop
loop_try_promote: [.]
    t := a < 2
    if-jump t, loop
    jr := jralloc exit
    jump loop_promote
loop_par_try_promote: [.]
    t := a < 2
    if-jump t, loop_par
    jump loop_promote
loop_promote: [.]
    m := a / 2
    n := a % 2
    a := m
    tr := r
    r := 0
    fork jr, loop_par
    a := m + n
    r := tr
    jump loop_par
loop_par: [prppt loop_par_try_promote]
    if-jump a, exit_par
    r := r + b
    a := a - 1
    jump loop_par
comb: [.]
    r := r + r2
    join jr
exit_par: [.]
    join jr
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(PROD_LISTING)?;
    println!(
        "parsed prod: {} blocks, {} instructions\n",
        program.block_count(),
        program.instr_count()
    );

    println!("♥         tasks  promotions  work      span     parallelism");
    for heartbeat in [u64::MAX, 1000, 250, 60] {
        let mut m = Machine::new(&program, MachineConfig::default().with_heartbeat(heartbeat));
        m.set_reg("a", 20_000)?;
        m.set_reg("b", 3)?;
        let out = m.run()?;
        assert_eq!(out.read_reg("c"), Some(60_000));
        let hb = if heartbeat == u64::MAX {
            "∞".to_owned()
        } else {
            heartbeat.to_string()
        };
        println!(
            "{hb:<9} {:<6} {:<11} {:<9} {:<8} {:.1}",
            out.stats.forks,
            out.stats.promotions,
            out.work,
            out.span,
            out.parallelism()
        );
    }

    // Round-trip the paper's nested and recursive examples.
    for (name, p) in [("pow", programs::pow()), ("fib", programs::fib())] {
        let text = print_program(&p);
        let back = parse_program(&text)?;
        assert_eq!(back.instr_count(), p.instr_count());
        println!(
            "\n{name}: {} blocks / {} instructions — pretty-printed and reparsed losslessly",
            p.block_count(),
            p.instr_count()
        );
    }

    // And run fib from its printed form, promotions included.
    let fib = parse_program(&print_program(&programs::fib()))?;
    let mut m = Machine::new(&fib, MachineConfig::default().with_heartbeat(40));
    m.set_reg("n", 20)?;
    let out = m.run()?;
    println!(
        "\nfib(20) = {} with {} promoted calls (stack marks: prmpush/prmsplit at work)",
        out.read_reg("f").unwrap(),
        out.stats.forks
    );
    Ok(())
}
