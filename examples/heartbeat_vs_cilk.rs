//! Heartbeat versus Cilk on real threads: the task-creation story.
//!
//! Runs fib and a fine-grained reduction on both native runtimes and
//! prints how many tasks each created. Cilk pays a task on every spawn
//! and every `8P` loop chunk; heartbeat scheduling pays one task per
//! beat, so its count is proportional to *elapsed time*, not to the
//! program's fork points — the paper's central contrast (Figures 6/15a).
//!
//! Run with: `cargo run --release --example heartbeat_vs_cilk`

use std::time::Instant;

use tpal::cilk::{cilk_reduce, cilk_spawn2, CilkRuntime};
use tpal::rt::{RtConfig, Runtime, WorkerCtx};

fn fib_hb(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = ctx.join2(|c| fib_hb(c, n - 1), |c| fib_hb(c, n - 2));
    a + b
}

fn fib_cilk(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = cilk_spawn2(ctx, |c| fib_cilk(c, n - 1), |c| fib_cilk(c, n - 2));
    a + b
}

fn main() {
    let workers = 2;
    let n_fib = 30u64;
    let n_sum = 20_000_000usize;

    let hb = Runtime::new(RtConfig::default().workers(workers));
    let cilk = CilkRuntime::new(workers);

    println!("system     benchmark   result         time      tasks created");

    let t = Instant::now();
    let f = hb.run(|ctx| fib_hb(ctx, n_fib));
    println!(
        "heartbeat  fib({n_fib})     {f:<14} {:<9.1?} {}",
        t.elapsed(),
        hb.stats().tasks_created
    );

    let t = Instant::now();
    let f2 = cilk.run(|ctx| fib_cilk(ctx, n_fib));
    assert_eq!(f, f2);
    println!(
        "cilk       fib({n_fib})     {f2:<14} {:<9.1?} {}",
        t.elapsed(),
        cilk.stats().tasks_created
    );

    hb.reset_stats();
    cilk.reset_stats();

    // Sum a real array (a memory-bound body the compiler cannot fold
    // into a closed form).
    let data: Vec<u64> = (0..n_sum as u64).map(|x| x ^ 0x55).collect();

    let t = Instant::now();
    let s = hb.run(|ctx| ctx.reduce(0..n_sum, 0u64, |_, i, a| a + data[i], |a, b| a + b));
    println!(
        "heartbeat  sum(20M)    {s:<14} {:<9.1?} {}",
        t.elapsed(),
        hb.stats().tasks_created
    );

    let t = Instant::now();
    let s2 =
        cilk.run(|ctx| cilk_reduce(ctx, 0..n_sum, 0u64, &|_, i, a| a + data[i], &|a, b| a + b));
    assert_eq!(s, s2);
    println!(
        "cilk       sum(20M)    {s2:<14} {:<9.1?} {}",
        t.elapsed(),
        cilk.stats().tasks_created
    );

    println!(
        "\nfib's call tree has ~{} internal nodes: Cilk creates a task at every one;\n\
         the heartbeat runtime creates one per beat — its count tracks wall-clock\n\
         time, not program structure (the amortisation argument of §2).",
        1_664_079
    );
}
