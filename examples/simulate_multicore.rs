//! The full pipeline on simulated multicore hardware: compile the
//! `spmv-powerlaw` benchmark from the task-parallel IR to TPAL in all
//! three modes (serial / heartbeat / Cilk-eager), then execute on the
//! cycle-level simulator across core counts and interrupt mechanisms —
//! a miniature of the paper's Figures 11 and 14.
//!
//! Run with: `cargo run --release --example simulate_multicore`

use tpal::ir::lower::{lower, Mode};
use tpal::sim::{Sim, SimConfig};
use tpal::workloads::{workload, Scale, SimSpec};

fn run(spec: &SimSpec, mode: Mode, config: SimConfig) -> (i64, u64, u64, f64) {
    let lowered = lower(&spec.ir, mode).expect("lowering");
    let mut sim = Sim::new(&lowered.program, config);
    for (name, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(name), base).unwrap();
    }
    for (name, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(name), *v).unwrap();
    }
    let out = sim.run().expect("simulation");
    (
        out.read_reg(&lowered.result_reg).unwrap(),
        out.time,
        out.stats.forks,
        out.utilization(),
    )
}

fn main() {
    let w = workload("spmv-powerlaw").expect("known workload");
    let spec = w.sim_spec(Scale::Quick);
    println!("spmv-powerlaw on the multicore simulator (irregular rows!)\n");

    // Serial baseline time.
    let (r, t_serial, _, _) = run(&spec, Mode::Serial, SimConfig::serial());
    assert_eq!(r, spec.expected);
    println!("serial baseline: {t_serial} cycles\n");

    println!("cores  heartbeat/nautilus   heartbeat/linux      cilk-eager");
    println!("       speedup tasks util   speedup tasks util   speedup tasks util");
    for cores in [1usize, 2, 4, 8, 15] {
        let mut row = format!("{cores:<6}");
        for (mode, cfg) in [
            (Mode::Heartbeat, SimConfig::nautilus(cores, 3000)),
            (Mode::Heartbeat, SimConfig::linux(cores, 3000)),
            (
                Mode::Eager {
                    workers: cores as u32,
                },
                SimConfig::nautilus(cores, 3000),
            ),
        ] {
            let (r, t, tasks, util) = run(&spec, mode, cfg);
            assert_eq!(r, spec.expected, "checksum must not depend on schedule");
            row.push_str(&format!(
                " {:>6.2}x {:<5} {:>3.0}% ",
                t_serial as f64 / t as f64,
                tasks,
                util * 100.0
            ));
        }
        println!("{row}");
    }

    println!(
        "\nThe powerlaw matrix's first row holds a large share of all non-zeros;\n\
         heartbeat scheduling splits it on demand (outer loop first, then the\n\
         giant row internally), while Cilk's fixed 8P grains must guess."
    );
}
