//! Compiler explorer: one task-parallel IR program, three executables.
//!
//! Builds a parallel dot-product in the IR, lowers it serially, with
//! heartbeat code versioning, and with Cilk-style eager decomposition,
//! prints an excerpt of the generated TPAL assembly, and runs all three
//! on the reference machine.
//!
//! Run with: `cargo run --release --example compile_ir`

use tpal::core::asm::print_program;
use tpal::core::machine::{Machine, MachineConfig};
use tpal::ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal::ir::lower::{lower, Mode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let v = Expr::var;
    let i = Expr::int;

    // dot(a, b, n) = Σ a[k]·b[k], exposed as a parallel loop.
    let dot = Function::new("dot", ["a", "b", "n"])
        .stmt(Stmt::assign("acc", i(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("k", i(0), v("n"))
                .body(vec![Stmt::assign(
                    "acc",
                    v("acc").add(v("a").load(v("k")).mul(v("b").load(v("k")))),
                )])
                .reducer(Reducer::new("acc", tpal::core::isa::BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(v("acc")));
    let ir = IrProgram::new("dot").function(dot);

    let n = 10_000usize;
    let a: Vec<i64> = (0..n as i64).map(|x| x % 23 - 11).collect();
    let b: Vec<i64> = (0..n as i64).map(|x| x % 7 - 3).collect();
    let expected: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();

    for (name, mode, heartbeat) in [
        ("serial", Mode::Serial, u64::MAX),
        ("heartbeat", Mode::Heartbeat, 150),
        ("eager (P=4)", Mode::Eager { workers: 4 }, u64::MAX),
    ] {
        let lowered = lower(&ir, mode)?;
        let mut m = Machine::new(
            &lowered.program,
            MachineConfig::default().with_heartbeat(heartbeat),
        );
        let pa = m.alloc_array(&a);
        let pb = m.alloc_array(&b);
        m.set_reg(&lowered.param_reg("a"), pa)?;
        m.set_reg(&lowered.param_reg("b"), pb)?;
        m.set_reg(&lowered.param_reg("n"), n as i64)?;
        let out = m.run()?;
        assert_eq!(out.read_reg(&lowered.result_reg), Some(expected));
        println!(
            "{name:<12} blocks={:<3} instrs executed={:<8} tasks={:<4} work/span={:.1}",
            lowered.program.block_count(),
            out.stats.instructions,
            out.stats.forks,
            out.parallelism(),
        );
    }

    // Show the heartbeat version's loop and handler blocks — the code
    // versioning of §3.1 made concrete.
    let hb = lower(&ir, Mode::Heartbeat)?;
    let text = print_program(&hb.program);
    println!("\n--- generated heartbeat TPAL (loop + handler excerpt) ---");
    let mut printing = false;
    for line in text.lines() {
        if line.starts_with("dot__pf0:") || line.starts_with("dot__pfh0:") {
            printing = true;
        } else if printing && line.ends_with(':') && !line.starts_with(' ') {
            printing = line.starts_with("dot__pfh");
        }
        if printing {
            println!("{line}");
        }
    }
    println!("--- (full listing: {} lines) ---", text.lines().count());
    Ok(())
}
