//! Quickstart: heartbeat scheduling in three scenes.
//!
//! 1. The paper's running example `prod` (Figure 2) on the TPAL abstract
//!    machine, serial and promoted.
//! 2. The same serial-by-default idea on real threads with the native
//!    runtime: a latent parallel reduction.
//! 3. The headline property: with heartbeats disabled the *same code*
//!    creates zero tasks.
//!
//! Run with: `cargo run --release --example quickstart`

use tpal::core::machine::{Machine, MachineConfig};
use tpal::core::programs::prod;
use tpal::rt::{HeartbeatSource, RtConfig, Runtime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Scene 1: the abstract machine ------------------------------
    let program = prod();
    println!("prod: c = a * b by repeated addition (Figure 2)\n");

    for (label, heartbeat) in [("serial (♥ = ∞)", u64::MAX), ("heartbeat (♥ = 100)", 100)] {
        let mut m = Machine::new(&program, MachineConfig::default().with_heartbeat(heartbeat));
        m.set_reg("a", 5_000)?;
        m.set_reg("b", 9)?;
        let out = m.run()?;
        println!(
            "  {label:<22} c = {:<8} tasks created = {:<4} work = {} span = {} (parallelism {:.1})",
            out.read_reg("c").unwrap(),
            out.stats.forks,
            out.work,
            out.span,
            out.parallelism(),
        );
    }

    // --- Scene 2: the native runtime --------------------------------
    let rt = Runtime::new(RtConfig::default().workers(2));
    let n = 5_000_000u64;
    let sum = rt.run(|ctx| ctx.reduce(0..n as usize, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    let stats = rt.stats();
    println!(
        "\nnative reduce of {n} elements: sum = {sum}\n  \
         heartbeats delivered = {}, promotions = {}, tasks created = {}",
        stats.heartbeats_delivered, stats.promotions, stats.tasks_created
    );
    assert_eq!(sum, (n - 1) * n / 2);

    // --- Scene 3: serial-by-default is really serial ----------------
    let rt_off = Runtime::new(
        RtConfig::default()
            .workers(2)
            .source(HeartbeatSource::Disabled),
    );
    let sum2 =
        rt_off.run(|ctx| ctx.reduce(0..n as usize, 0u64, |_, i, a| a + i as u64, |a, b| a + b));
    assert_eq!(sum, sum2);
    println!(
        "\nwith heartbeats disabled the same loop created {} tasks — \
         parallelism stayed latent, at (almost) zero cost",
        rt_off.stats().tasks_created
    );
    Ok(())
}
