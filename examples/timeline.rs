//! Execution timelines: watching heartbeat scheduling happen.
//!
//! Runs the paper's recursive `fib` on 8 simulated cores and renders a
//! per-core activity Gantt chart (`#` work, `+` mixed, `o` overhead,
//! `.` idle) under three configurations:
//!
//! 1. heartbeats disabled — one core works, seven idle (latent
//!    parallelism never manifests);
//! 2. per-core timers (Nautilus) at an over-aggressive ♥ — instant
//!    ramp-up and a 100% heartbeat rate, but visibly diluted columns:
//!    every core pays promotion overhead every 500 cycles;
//! 3. ping-thread delivery (Linux) at the same ♥ — the sequential
//!    signal round only achieves ~a third of the target rate. Watch the
//!    ramp-up stripe at the left edge (cores start idle while signals
//!    trickle out), and then §5.3's double-edged sword: with ♥ this
//!    aggressive, *missing* beats reduces promotion overhead and the
//!    columns get denser. Figures 10/12's mechanism, live.
//!
//! Run with: `cargo run --release --example timeline`

use tpal::core::programs::fib;
use tpal::sim::{InterruptModel, Sim, SimConfig};

fn run(label: &str, interrupt: InterruptModel) {
    let program = fib();
    let mut config = SimConfig::nautilus(8, 500);
    config.interrupt = interrupt;
    config.record_timeline = true;
    let mut sim = Sim::new(&program, config);
    sim.set_reg("n", 24).unwrap();
    let out = sim.run().expect("simulation");
    assert_eq!(out.read_reg("f"), Some(46_368));
    println!(
        "\n=== {label}: {} cycles, {} tasks, utilization {:.0}%, rate {:.0}% ===",
        out.time,
        out.stats.forks,
        out.utilization() * 100.0,
        out.heartbeat_rate_achieved() * 100.0
    );
    print!("{}", out.timeline.expect("recorded").render(64));
}

fn main() {
    println!("fib(24) on 8 simulated cores, ♥ = 500 cycles (deliberately over-aggressive)");
    run("no heartbeats", InterruptModel::Disabled);
    run(
        "per-core timer (Nautilus)",
        InterruptModel::PerCoreTimer { service_cost: 5 },
    );
    run(
        "ping thread (Linux), 150-cycle signals",
        InterruptModel::PingThread {
            latency: 150,
            jitter: 60,
            service_cost: 60,
        },
    );
    println!("\nlegend: '#' ≥75% useful work, '+' ≥25%, 'o' overhead-bound, '.' idle");
}
